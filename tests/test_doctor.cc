// Self-healing control-plane suite (§5.4, §7.2.3): lease-based membership
// with RMA self-fencing, the CellDoctor failure detector/orchestrator, and
// the client-side gray-failure defenses (hedged quorum fetches, slow-replica
// ejection).
//
//   D1. Lease expiry fences RMA: a backend partitioned away from the
//       ConfigService self-fences before its lease lapses; stale one-sided
//       readers fail fast (PERMISSION_DENIED -> client window_errors), and
//       renewal after the partition heals restores service.
//   D2. One-way partitions never trigger a rebuild: when only the
//       doctor->backend direction is dark, heartbeats keep the lease live
//       and the verdict stays SUSPECT — zero recoveries started.
//   D3. A crashed backend is detected, declared dead (probes miss AND lease
//       lapsed), and replaced with zero operator calls; data survives via
//       cohort repair and the membership epoch advances.
//   D4. A flapping backend is rate-limited: at most one reconfiguration per
//       cool-down window (flap_suppressed counts the ignored verdicts).
//   D5. Hedged reads bound the tail: with one erratically-slow replica,
//       GET p99 stays under 3x the no-fault p99 and hedges actually fire.
//       With ejection enabled the slow replica drops out of the fan-out.
//   D6. Chaos soak with auto-recovery on: across 10 seeds with link faults
//       plus an unrecovered crash (the doctor must replace it), no GET ever
//       returns a value nobody wrote and no acked state rolls back.
//
// Plus the config-id regression: AllocateConfigId must stay globally unique
// far past the per-shard counts where the old additive scheme collided.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cliquemap/cell.h"
#include "cliquemap/doctor.h"
#include "common/histogram.h"

namespace cm::cliquemap {
namespace {

// Millisecond-scale doctor so the suite converges in a few hundred sim-ms.
DoctorOptions FastDoctor() {
  DoctorOptions d;
  d.probe_interval = sim::Milliseconds(5);
  d.probe_timeout = sim::Milliseconds(2);
  d.suspect_after_misses = 2;
  d.dead_after_misses = 4;
  d.heartbeat_interval = sim::Milliseconds(5);
  d.lease_duration = sim::Milliseconds(25);
  d.cooldown = sim::Milliseconds(300);
  return d;
}

// Drives the simulator until `*flag` is set. The doctor/heartbeat loops keep
// the event queue non-empty forever, so tests cannot use sim.Run() alone.
void DriveUntil(sim::Simulator& sim, const bool* flag) {
  while (!*flag && !sim.empty()) sim.RunSteps(256);
}

// Drives until `cond()` holds or sim time passes `limit` (watchdog against a
// doctor that never converges — the EXPECTs after the loop then diagnose).
template <typename Cond>
void DriveUntilCond(sim::Simulator& sim, sim::Time limit, Cond cond) {
  while (!cond() && sim.now() < limit && !sim.empty()) sim.RunSteps(256);
}

// ---------------------------------------------------------------------------
// Config-id regression: the pre-lease scheme (`++global + 1000 * (shard+1)`)
// collided across shards once any shard minted past 1000 ids. The namespaced
// scheme must stay globally unique well beyond that point.
// ---------------------------------------------------------------------------

TEST(ConfigIdTest, UniqueAcrossShardsPastOldCollisionPoint) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  Cell cell(sim, std::move(o));
  cell.Start();

  ConfigService& cfg = cell.config_service();
  std::set<uint32_t> ids;
  for (uint32_t s = 0; s < 3; ++s) {
    for (int i = 0; i < 1200; ++i) {
      const uint32_t id = cfg.AllocateConfigId(s);
      EXPECT_TRUE(ids.insert(id).second)
          << "config id " << id << " minted twice (shard " << s << ")";
    }
  }
  // The old scheme also reused the bootstrap ids 1000*(s+1); the namespaced
  // ids must be disjoint from that legacy range.
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(ids.count(1000 * (s + 1)), 0u);
  }
}

// ---------------------------------------------------------------------------
// D1: lease lapse self-fences the RMA windows; renewal restores them.
// ---------------------------------------------------------------------------

TEST(LeaseTest, LapseFencesRmaAndRenewalRestores) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 1;
  o.mode = ReplicationMode::kR1;  // single replica: fencing must fail the GET
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();

  cell.config_service().SetLeaseDuration(sim::Milliseconds(20));
  cell.backend(0).StartHeartbeats(sim::Milliseconds(5));

  // Blocks heartbeat *requests* (backend -> config): the lease lapses on both
  // clocks and the backend must self-fence on its own.
  auto plan = std::make_shared<net::FaultPlan>(1);
  plan->AddPartition(cell.backend(0).host(), cell.config_service().host(),
                     sim::Milliseconds(50), sim::Milliseconds(150));
  cell.fabric().InstallFaults(plan);

  Client* client = cell.AddClient();
  auto done = std::make_shared<bool>(false);
  sim.Spawn([](sim::Simulator& sim, Cell* cell, Client* client,
               std::shared_ptr<bool> done) -> sim::Task<void> {
    (void)co_await client->Connect();
    Status s = co_await client->Set("fence-key", Bytes(256, std::byte{0x42}));
    EXPECT_TRUE(s.ok()) << s.ToString();
    // Warm-up GET before the partition: establishes the RMA window
    // handshake, so the fenced read below fails *at the revoked window*
    // (the stale-one-sided-reader case) rather than at a fresh handshake.
    auto warm = co_await client->Get("fence-key");
    EXPECT_TRUE(warm.ok()) << warm.status().ToString();

    // Mid-partition: lease lapsed ~70ms (last renewal before 50ms + 20ms).
    co_await sim.WaitUntil(sim::Milliseconds(100));
    EXPECT_TRUE(cell->backend(0).fenced());
    EXPECT_GE(cell->backend(0).stats().self_fences, 1);
    EXPECT_FALSE(
        cell->config_service().LeaseLiveAt(cell->backend(0).host(), sim.now()));
    auto r = co_await client->Get("fence-key");
    EXPECT_FALSE(r.ok()) << "stale reader must not be served by a fenced window";
    EXPECT_GE(client->stats().window_errors, 1);

    // After heal + renewal + client replica-backoff: service restored.
    co_await sim.WaitUntil(sim::Milliseconds(700));
    EXPECT_FALSE(cell->backend(0).fenced());
    EXPECT_GE(cell->backend(0).stats().unfences, 1);
    EXPECT_TRUE(
        cell->config_service().LeaseLiveAt(cell->backend(0).host(), sim.now()));
    auto r2 = co_await client->Get("fence-key");
    EXPECT_TRUE(r2.ok()) << r2.status().ToString();
    if (r2.ok()) {
      EXPECT_EQ(r2->value.size(), 256u);
      EXPECT_EQ(r2->value[0], std::byte{0x42});
    }
    *done = true;
  }(sim, &cell, client, done));

  DriveUntil(sim, done.get());
  EXPECT_TRUE(*done);
  cell.backend(0).StopHeartbeats();
  sim.Run();
}

// ---------------------------------------------------------------------------
// D2: one-way partition (doctor -> backend dark, backend -> config clear)
// yields SUSPECT, never DEAD — heartbeats keep the lease live, so the
// rebuild trigger (probes miss AND lease lapsed) cannot fire.
// ---------------------------------------------------------------------------

TEST(DoctorTest, OneWayPartitionIsSuspectNotDead) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();

  CellDoctor doctor(cell, FastDoctor());
  doctor.Start();

  // config -> backend(0) dark: probe requests vanish (misses accumulate)
  // and heartbeat *responses* vanish (the backend, unable to confirm
  // renewal, conservatively self-fences) — but the requests still arrive,
  // so the ConfigService keeps the lease live.
  auto plan = std::make_shared<net::FaultPlan>(2);
  plan->AddPartition(cell.config_service().host(), cell.backend(0).host(),
                     sim::Milliseconds(100), sim::Milliseconds(300));
  cell.fabric().InstallFaults(plan);

  auto done = std::make_shared<bool>(false);
  sim.Spawn([](sim::Simulator& sim, Cell* cell, CellDoctor* doctor,
               std::shared_ptr<bool> done) -> sim::Task<void> {
    co_await sim.WaitUntil(sim::Milliseconds(250));
    EXPECT_EQ(doctor->health(0), BackendHealth::kSuspect);
    EXPECT_GE(doctor->stats().suspect_transitions, 1);
    EXPECT_EQ(doctor->stats().dead_transitions, 0);
    EXPECT_EQ(doctor->stats().recoveries_started, 0);
    EXPECT_TRUE(
        cell->config_service().LeaseLiveAt(cell->backend(0).host(), sim.now()));
    EXPECT_TRUE(cell->backend(0).fenced());  // conservative self-fence

    co_await sim.WaitUntil(sim::Milliseconds(600));
    EXPECT_EQ(doctor->health(0), BackendHealth::kHealthy);
    EXPECT_FALSE(cell->backend(0).fenced());
    EXPECT_EQ(doctor->stats().dead_transitions, 0);
    EXPECT_EQ(doctor->stats().recoveries_started, 0);
    *done = true;
  }(sim, &cell, &doctor, done));

  DriveUntil(sim, done.get());
  EXPECT_TRUE(*done);
  doctor.Stop();
  sim.Run();
}

// ---------------------------------------------------------------------------
// D3: crash -> detect -> fence -> replace, zero operator calls.
// ---------------------------------------------------------------------------

TEST(DoctorTest, ReplacesCrashedBackendAutomatically) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();

  CellDoctor doctor(cell, FastDoctor());
  doctor.Start();

  constexpr int kKeys = 20;
  Client* client = cell.AddClient();
  auto loaded = std::make_shared<bool>(false);
  sim.Spawn([](Client* client, std::shared_ptr<bool> loaded) -> sim::Task<void> {
    (void)co_await client->Connect();
    for (int k = 0; k < kKeys; ++k) {
      Status s = co_await client->Set("doc-" + std::to_string(k),
                                      Bytes(512, std::byte{uint8_t(k + 1)}));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    *loaded = true;
  }(client, loaded));
  DriveUntil(sim, loaded.get());
  ASSERT_TRUE(*loaded);

  const uint64_t epoch_before = cell.config_service().membership_epoch();
  const sim::Time crash_at = sim.now();
  cell.CrashShard(0);

  DriveUntilCond(sim, crash_at + sim::Seconds(5), [&] {
    return doctor.stats().recoveries_succeeded >= 1;
  });

  ASSERT_EQ(doctor.stats().recoveries_succeeded, 1)
      << "doctor failed to replace the crashed backend";
  EXPECT_EQ(doctor.stats().dead_transitions, 1);
  EXPECT_EQ(doctor.health(0), BackendHealth::kHealthy);
  EXPECT_GT(cell.config_service().membership_epoch(), epoch_before);

  ASSERT_EQ(doctor.recoveries().size(), 1u);
  const RecoveryRecord& rec = doctor.recoveries()[0];
  EXPECT_TRUE(rec.ok);
  EXPECT_EQ(rec.shard, 0u);
  EXPECT_GT(rec.detected_at, rec.last_ok);
  EXPECT_GT(rec.converged_at, rec.detected_at);
  EXPECT_EQ(doctor.detect_ns().count(), 1);
  EXPECT_EQ(doctor.mttr_ns().count(), 1);

  // Every preloaded key survived the unassisted replacement (cohort repair
  // seeded the fresh backend; clients chase the new config on mismatch).
  auto verified = std::make_shared<bool>(false);
  sim.Spawn([](Client* client, std::shared_ptr<bool> verified) -> sim::Task<void> {
    for (int k = 0; k < kKeys; ++k) {
      auto r = co_await client->Get("doc-" + std::to_string(k));
      EXPECT_TRUE(r.ok()) << "key " << k << ": " << r.status().ToString();
      if (r.ok()) {
        EXPECT_EQ(r->value.size(), 512u);
        EXPECT_EQ(r->value[0], std::byte{uint8_t(k + 1)});
      }
    }
    *verified = true;
  }(client, verified));
  DriveUntil(sim, verified.get());
  EXPECT_TRUE(*verified);

  doctor.Stop();
  sim.Run();
}

// ---------------------------------------------------------------------------
// D4: flapping is bounded — at most one reconfiguration per cool-down.
// ---------------------------------------------------------------------------

TEST(DoctorTest, FlappingBoundedByCooldown) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();

  CellDoctor doctor(cell, FastDoctor());  // cooldown = 300ms
  doctor.Start();

  // First failure: recovered normally.
  DriveUntilCond(sim, sim::Milliseconds(100), [] { return false; });  // settle
  cell.CrashShard(0);
  DriveUntilCond(sim, sim.now() + sim::Seconds(5), [&] {
    return doctor.stats().recoveries_succeeded >= 1;
  });
  ASSERT_EQ(doctor.stats().recoveries_succeeded, 1);

  // The replacement immediately dies too (flap). Inside the cool-down the
  // doctor must *suppress* the rebuild, not storm.
  cell.CrashShard(0);
  DriveUntilCond(sim, sim.now() + sim::Seconds(2), [&] {
    return doctor.stats().flap_suppressed >= 1;
  });
  EXPECT_GE(doctor.stats().flap_suppressed, 1);
  EXPECT_EQ(doctor.stats().recoveries_started, 1)
      << "a second rebuild started inside the cool-down window";

  // Once the cool-down elapses the still-dead shard is finally rebuilt.
  DriveUntilCond(sim, sim.now() + sim::Seconds(10), [&] {
    return doctor.stats().recoveries_succeeded >= 2;
  });
  EXPECT_EQ(doctor.stats().recoveries_succeeded, 2);
  EXPECT_EQ(doctor.stats().recoveries_started, 2);

  doctor.Stop();
  sim.Run();
}

// ---------------------------------------------------------------------------
// D5: hedged quorum fetches bound the tail under gray failure.
// ---------------------------------------------------------------------------

struct HedgeOutcome {
  int64_t p99_ns = 0;
  int errors = 0;
  ClientStats stats;
};

// One erratically-slow backend host (50% of its messages delayed ~2ms): its
// index vote sometimes races ahead (undelayed) and wins preferred, then the
// data fetch against it stalls — exactly the gray failure hedging defends.
HedgeOutcome RunHedgeWorkload(bool slow_host, bool hedge, bool eject,
                              sim::Duration hedge_delay) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  o.seed = 7;
  o.backend.initial_buckets = 128;
  Cell cell(sim, std::move(o));
  cell.Start();

  ClientConfig cc;
  cc.strategy = LookupStrategy::kTwoR;
  cc.hedge_reads = hedge;
  cc.eject_slow_replicas = eject;
  cc.hedge_delay = hedge_delay;
  Client* client = cell.AddClient(cc);

  constexpr int kHedgeKeys = 32;
  constexpr int kHedgeOps = 400;
  auto hist = std::make_shared<Histogram>();
  auto errors = std::make_shared<int>(0);
  auto done = std::make_shared<bool>(false);
  sim.Spawn([](sim::Simulator& sim, Cell* cell, Client* client, bool slow,
               std::shared_ptr<Histogram> hist, std::shared_ptr<int> errors,
               std::shared_ptr<bool> done) -> sim::Task<void> {
    (void)co_await client->Connect();
    for (int k = 0; k < kHedgeKeys; ++k) {
      Status s = co_await client->Set("hedge-" + std::to_string(k),
                                      Bytes(1024, std::byte{0x5A}));
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
    if (slow) {  // faults start only after the clean preload
      auto plan = std::make_shared<net::FaultPlan>(99);
      net::LinkFaultRates rates;
      rates.delay = 0.5;
      rates.delay_mean = sim::Milliseconds(2);
      plan->SetHostRates(cell->backend(0).host(), rates);
      cell->fabric().InstallFaults(plan);
    }
    Rng rng(17);
    for (int op = 0; op < kHedgeOps; ++op) {
      co_await sim.Delay(sim::Microseconds(50));
      const sim::Time t0 = sim.now();
      auto r = co_await client->Get(
          "hedge-" + std::to_string(rng.NextBounded(kHedgeKeys)));
      if (!r.ok()) {
        ++*errors;
        continue;
      }
      hist->Record(static_cast<int64_t>(sim.now() - t0));
    }
    *done = true;
  }(sim, &cell, client, slow_host, hist, errors, done));

  DriveUntil(sim, done.get());
  sim.Run();
  HedgeOutcome out;
  out.p99_ns = static_cast<int64_t>(hist->Percentile(0.99));
  out.errors = *errors;
  out.stats = client->stats();
  return out;
}

TEST(HedgeTest, HedgedReadsBoundTailUnderGrayFailure) {
  const HedgeOutcome base =
      RunHedgeWorkload(false, false, false, sim::Microseconds(300));
  ASSERT_GT(base.p99_ns, 0);
  EXPECT_EQ(base.errors, 0);
  EXPECT_EQ(base.stats.hedged_reads, 0);

  // Hedge after half the no-fault p99: a stalled preferred fetch costs
  // ~1.5x baseline instead of the injected ~2ms.
  const auto hedge_delay =
      sim::Duration(std::max<int64_t>(base.p99_ns / 2, 1000));
  const HedgeOutcome hedged = RunHedgeWorkload(true, true, false, hedge_delay);
  EXPECT_GT(hedged.stats.hedged_reads, 0);
  EXPECT_LT(hedged.p99_ns, 3 * base.p99_ns)
      << "hedged p99 " << hedged.p99_ns << "ns vs no-fault p99 " << base.p99_ns
      << "ns (hedges=" << hedged.stats.hedged_reads
      << " wins=" << hedged.stats.hedge_wins << ")";
  EXPECT_LE(hedged.errors, 8);  // availability under per-message delays

  // With ejection the slow replica drops out of the fan-out entirely.
  const HedgeOutcome ejected = RunHedgeWorkload(true, true, true, hedge_delay);
  EXPECT_GT(ejected.stats.slow_ejections, 0);
  EXPECT_LT(ejected.p99_ns, 3 * base.p99_ns)
      << "ejected p99 " << ejected.p99_ns << "ns vs no-fault p99 "
      << base.p99_ns << "ns";
  EXPECT_LE(ejected.errors, 8);
}

// ---------------------------------------------------------------------------
// D6: chaos soak with the doctor in charge. Each seed injects link faults
// and one *unrecovered* crash; only the doctor may bring the cell back.
// ---------------------------------------------------------------------------

struct SoakOutcome {
  int wrong_values = 0;     // GET returned a value nobody wrote
  int rollbacks = 0;        // final version older than an observed version
  int unreadable = 0;       // acked key unreadable after recovery + repair
  int64_t recoveries = 0;
  bool recovered = false;   // doctor replaced the crashed backend
};

SoakOutcome RunDoctorSoak(uint64_t seed) {
  constexpr int kKeys = 16;
  constexpr int kClients = 2;
  constexpr int kOps = 60;
  constexpr size_t kValueBytes = 512;

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 4;
  o.mode = ReplicationMode::kR32;
  o.seed = seed;
  o.backend.initial_buckets = 128;
  Cell cell(sim, std::move(o));
  cell.Start();

  CellDoctor doctor(cell, FastDoctor());
  doctor.Start();

  Rng prng(seed * 0x9E3779B97F4A7C15ull + 0xD0C);
  auto plan = std::make_shared<net::FaultPlan>(seed);
  net::LinkFaultRates rates;
  rates.drop = 0.002 + prng.NextDouble() * 0.008;
  rates.corrupt = prng.NextDouble() * 0.004;
  rates.delay = prng.NextDouble() * 0.03;
  rates.delay_mean = sim::Microseconds(int64_t(20 + prng.NextBounded(60)));
  plan->SetDefaultRates(rates);
  plan->SetActiveWindow(sim::Milliseconds(20), sim::Milliseconds(200));
  cell.fabric().InstallFaults(plan);

  // The crash the doctor must heal: no restart is ever scheduled.
  const uint32_t victim = uint32_t(prng.NextBounded(cell.num_shards()));
  sim.Spawn([](sim::Simulator& sim, Cell* cell,
               uint32_t victim) -> sim::Task<void> {
    co_await sim.WaitUntil(sim::Milliseconds(60));
    cell->CrashShard(victim);
  }(sim, &cell, victim));

  std::vector<Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    clients.push_back(cell.AddClient(cc));
  }

  auto written = std::make_shared<std::vector<std::set<uint8_t>>>(kKeys);
  auto max_seen = std::make_shared<std::vector<VersionNumber>>(kKeys);
  auto next_fill = std::make_shared<uint8_t>(1);
  auto wrong = std::make_shared<int>(0);

  auto loaded = std::make_shared<bool>(false);
  sim.Spawn([](Client* client, decltype(written) written,
               std::shared_ptr<bool> loaded) -> sim::Task<void> {
    (void)co_await client->Connect();
    for (int k = 0; k < kKeys; ++k) {
      (*written)[size_t(k)].insert(1);
      Status s = co_await client->Set("soak-" + std::to_string(k),
                                      Bytes(kValueBytes, std::byte{1}));
      EXPECT_TRUE(s.ok()) << "preload " << k << ": " << s.ToString();
    }
    *loaded = true;
  }(clients[0], written, loaded));

  auto done = std::make_shared<int>(0);
  for (int c = 0; c < kClients; ++c) {
    sim.Spawn([](sim::Simulator& sim, Client* client, uint64_t seed,
                 decltype(written) written, decltype(max_seen) max_seen,
                 decltype(next_fill) next_fill, std::shared_ptr<int> wrong,
                 std::shared_ptr<bool> loaded,
                 std::shared_ptr<int> done) -> sim::Task<void> {
      (void)co_await client->Connect();
      while (!*loaded) co_await sim.Delay(sim::Milliseconds(1));
      Rng rng(seed);
      for (int op = 0; op < kOps; ++op) {
        co_await sim.Delay(sim::Microseconds(int64_t(rng.NextBounded(2000))));
        const int k = int(rng.NextBounded(kKeys));
        if (rng.NextBool(0.6)) {
          auto got = co_await client->Get("soak-" + std::to_string(k));
          if (!got.ok()) continue;  // availability, not integrity
          bool valid = got->value.size() == kValueBytes;
          if (valid) {
            const auto fill = static_cast<uint8_t>(got->value[0]);
            for (std::byte bb : got->value) valid &= (bb == std::byte{fill});
            valid &= (*written)[size_t(k)].count(fill) != 0;
          }
          if (!valid) ++*wrong;
          if ((*max_seen)[size_t(k)] < got->version) {
            (*max_seen)[size_t(k)] = got->version;
          }
        } else {
          uint8_t fill = (*next_fill)++;
          if (fill == 0) fill = (*next_fill)++;
          (*written)[size_t(k)].insert(fill);
          (void)co_await client->Set("soak-" + std::to_string(k),
                                     Bytes(kValueBytes, std::byte{fill}));
        }
      }
      ++*done;
    }(sim, clients[size_t(c)], seed * 131 + uint64_t(c) + 1, written, max_seen,
      next_fill, wrong, loaded, done));
  }

  while (*done < kClients && !sim.empty()) sim.RunSteps(256);

  // Let the doctor finish healing, then run the usual repair rounds.
  DriveUntilCond(sim, sim.now() + sim::Seconds(5), [&] {
    return doctor.stats().recoveries_succeeded >= 1 &&
           doctor.health(victim) == BackendHealth::kHealthy;
  });
  for (int round = 0; round < 2; ++round) {
    for (uint32_t s = 0; s < cell.num_shards(); ++s) {
      auto scanned = std::make_shared<bool>(false);
      sim.Spawn([](Backend* b, std::shared_ptr<bool> scanned) -> sim::Task<void> {
        co_await b->RepairScanOnce(/*all_shards=*/true);
        *scanned = true;
      }(&cell.backend(s), scanned));
      DriveUntil(sim, scanned.get());
    }
  }

  SoakOutcome out;
  out.recoveries = doctor.stats().recoveries_succeeded;
  out.recovered = doctor.stats().recoveries_succeeded >= 1 &&
                  doctor.health(victim) == BackendHealth::kHealthy;

  auto verified = std::make_shared<bool>(false);
  auto rollbacks = std::make_shared<int>(0);
  auto unreadable = std::make_shared<int>(0);
  sim.Spawn([](Client* client, decltype(written) written,
               decltype(max_seen) max_seen, std::shared_ptr<int> wrong,
               std::shared_ptr<int> rollbacks, std::shared_ptr<int> unreadable,
               std::shared_ptr<bool> verified) -> sim::Task<void> {
    for (int k = 0; k < kKeys; ++k) {
      auto got = co_await client->Get("soak-" + std::to_string(k));
      if (!got.ok()) {
        ++*unreadable;  // every key had at least the acked preload SET
        continue;
      }
      bool valid = got->value.size() == kValueBytes;
      if (valid) {
        const auto fill = static_cast<uint8_t>(got->value[0]);
        for (std::byte bb : got->value) valid &= (bb == std::byte{fill});
        valid &= (*written)[size_t(k)].count(fill) != 0;
      }
      if (!valid) ++*wrong;
      if (got->version < (*max_seen)[size_t(k)]) ++*rollbacks;
    }
    *verified = true;
  }(clients[0], written, max_seen, wrong, rollbacks, unreadable, verified));
  DriveUntil(sim, verified.get());
  EXPECT_TRUE(*verified);

  out.wrong_values = *wrong;
  out.rollbacks = *rollbacks;
  out.unreadable = *unreadable;
  doctor.Stop();
  sim.Run();
  return out;
}

TEST(DoctorTest, ChaosSoakWithAutoRecovery) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const SoakOutcome out = RunDoctorSoak(seed);
    EXPECT_TRUE(out.recovered)
        << "doctor never healed the crashed backend (recoveries="
        << out.recoveries << ")";
    EXPECT_EQ(out.wrong_values, 0);
    EXPECT_EQ(out.rollbacks, 0);
    EXPECT_EQ(out.unreadable, 0);
  }
}

}  // namespace
}  // namespace cm::cliquemap
