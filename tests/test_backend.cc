// Backend-focused tests: reshaping, eviction, tombstone semantics, data
// growth, overflow fallback — driven through real cells.
#include <gtest/gtest.h>

#include "cliquemap/cell.h"

namespace cm::cliquemap {
namespace {

template <typename T>
T RunOp(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  sim.Run();
  EXPECT_TRUE(out->has_value());
  return **out;
}

CellOptions TinyCell() {
  CellOptions o;
  o.num_shards = 1;
  o.mode = ReplicationMode::kR1;
  o.backend.initial_buckets = 8;  // tiny: easy to fill / resize
  o.backend.ways = 4;
  o.backend.data_initial_bytes = 128 * 1024;
  o.backend.data_max_bytes = 4 * 1024 * 1024;
  return o;
}

struct BackendFixture : ::testing::Test {
  sim::Simulator sim;
  std::unique_ptr<Cell> cell;
  Client* client = nullptr;

  void Init(CellOptions o) {
    cell = std::make_unique<Cell>(sim, std::move(o));
    cell->Start();
    client = cell->AddClient();
    ASSERT_TRUE(RunOp(sim, client->Connect()).ok());
  }

  Status Set(const std::string& k, size_t bytes) {
    return RunOp(sim, client->Set(k, Bytes(bytes, std::byte{0x5A})));
  }
  StatusOr<GetResult> Get(const std::string& k) {
    return RunOp(sim, client->Get(k));
  }
};

TEST_F(BackendFixture, IndexResizeTriggersAndKeysSurvive) {
  Init(TinyCell());
  Backend& b = cell->backend(0);
  const uint64_t buckets_before = b.num_buckets();
  // 8 buckets x 4 ways x 0.75 = 24 entries trigger a resize.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(Set("grow-" + std::to_string(i), 64).ok()) << i;
  }
  sim.Run();
  EXPECT_GT(b.num_buckets(), buckets_before);
  EXPECT_GE(b.stats().index_resizes, 1);
  // Conservation: every inserted key is either resident or was evicted by
  // an associativity conflict (tiny 4-way buckets overflow before the
  // resize catches up — the conflict upsizing exists to make rare, §4.2).
  EXPECT_EQ(static_cast<int64_t>(b.live_entries()) +
                b.stats().evictions_assoc + b.stats().evictions_capacity,
            64);
  // Every key still resident after re-placement must remain RMA-readable
  // (clients re-handshake transparently after the window revocation).
  int resident = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "grow-" + std::to_string(i);
    if (!b.LookupVersion(key).has_value()) continue;
    ++resident;
    auto got = Get(key);
    ASSERT_TRUE(got.ok()) << i << " " << got.status().ToString();
  }
  EXPECT_EQ(resident, static_cast<int>(b.live_entries()));
  EXPECT_GT(resident, 40);  // most keys survive
}

TEST_F(BackendFixture, DataRegionGrowsOnDemand) {
  CellOptions o = TinyCell();
  o.backend.initial_buckets = 256;  // no index pressure: isolate data growth
  Init(std::move(o));
  Backend& b = cell->backend(0);
  const uint64_t populated_before = b.data_populated();
  // Write well past the initial 128KB data region.
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(Set("big-" + std::to_string(i), 8 * 1024).ok()) << i;
  }
  sim.Run();
  EXPECT_GT(b.data_populated(), populated_before);
  EXPECT_GE(b.stats().data_grows, 1);
  // Old windows remain live: entries written before the growth still read.
  for (int i = 0; i < 80; ++i) {
    EXPECT_TRUE(Get("big-" + std::to_string(i)).ok()) << i;
  }
}

TEST_F(BackendFixture, CapacityEvictionWhenPoolMaxed) {
  CellOptions o = TinyCell();
  o.backend.data_initial_bytes = 128 * 1024;
  o.backend.data_max_bytes = 256 * 1024;  // hard cap: must evict
  o.backend.initial_buckets = 256;        // plenty of index space
  Init(std::move(o));
  Backend& b = cell->backend(0);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(Set("cap-" + std::to_string(i), 4 * 1024).ok()) << i;
  }
  EXPECT_GT(b.stats().evictions_capacity, 0);
  // Recent keys resident, oldest evicted (LRU default).
  EXPECT_TRUE(Get("cap-119").ok());
  EXPECT_EQ(Get("cap-0").status().code(), StatusCode::kNotFound);
}

TEST_F(BackendFixture, AssociativityEvictionOnFullBucket) {
  CellOptions o = TinyCell();
  o.backend.initial_buckets = 1;  // everything collides into one bucket
  o.backend.ways = 4;
  o.backend.index_load_limit = 10.0;  // never resize: force the conflict
  Init(std::move(o));
  Backend& b = cell->backend(0);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(Set("assoc-" + std::to_string(i), 64).ok()) << i;
  }
  EXPECT_GT(b.stats().evictions_assoc, 0);
  EXPECT_LE(b.live_entries(), 4u);
}

TEST_F(BackendFixture, OverflowRpcFallbackServesHit) {
  CellOptions o = TinyCell();
  o.backend.initial_buckets = 1;
  o.backend.ways = 2;
  o.backend.index_load_limit = 10.0;
  o.backend.rpc_fallback_on_overflow = true;  // §4.2 optional fallback
  Init(std::move(o));
  Backend& b = cell->backend(0);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(Set("ovf-" + std::to_string(i), 64).ok()) << i;
  }
  EXPECT_GT(b.stats().overflow_inserts, 0);
  const int64_t rpc_gets_before = b.stats().rpc_gets;
  // Every key is still a hit: RMA for residents, RPC for overflowed.
  for (int i = 0; i < 6; ++i) {
    auto got = Get("ovf-" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i << " " << got.status().ToString();
  }
  EXPECT_GT(b.stats().rpc_gets, rpc_gets_before);
  EXPECT_GT(client->stats().rpc_fallback_gets, 0);
}

TEST_F(BackendFixture, StaleVersionSetRejected) {
  Init(TinyCell());
  // Two clients; the second's clock/sequence yields higher versions over
  // time. Simulate staleness by applying a direct InstallBulk with an old
  // version.
  ASSERT_TRUE(Set("vkey", 64).ok());
  auto v1 = cell->backend(0).LookupVersion("vkey");
  ASSERT_TRUE(v1.has_value());

  // A direct RPC SET with version below the stored one must be rejected.
  rpc::WireWriter w;
  w.PutString(proto::kTagKey, "vkey");
  w.PutBytes(proto::kTagValue, ToBytes("stale"));
  proto::PutVersion(w, VersionNumber{v1->tt_micros - 1, 0, 0});
  rpc::RpcChannel ch(cell->rpc_network(), client->host(),
                     cell->backend(0).host());
  auto resp = RunOp(sim, ch.Call(proto::kMethodSet, std::move(w).Take(),
                                 sim::Milliseconds(10)));
  ASSERT_TRUE(resp.ok());
  rpc::WireReader r(*resp);
  EXPECT_EQ(r.GetU32(proto::kTagApplied), 0u);  // not applied
  EXPECT_EQ(cell->backend(0).LookupVersion("vkey"), v1);  // unchanged
}

TEST_F(BackendFixture, TombstoneBlocksLateSet) {
  Init(TinyCell());
  ASSERT_TRUE(Set("late", 64).ok());
  auto v = cell->backend(0).LookupVersion("late");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(RunOp(sim, client->Erase("late")).ok());

  // Late-arriving SET below the erase version: must not resurrect (§5.2).
  rpc::WireWriter w;
  w.PutString(proto::kTagKey, "late");
  w.PutBytes(proto::kTagValue, ToBytes("zombie"));
  proto::PutVersion(w, *v);  // the old (pre-erase) version
  rpc::RpcChannel ch(cell->rpc_network(), client->host(),
                     cell->backend(0).host());
  auto resp = RunOp(sim, ch.Call(proto::kMethodSet, std::move(w).Take(),
                                 sim::Milliseconds(10)));
  ASSERT_TRUE(resp.ok());
  rpc::WireReader r(*resp);
  EXPECT_EQ(r.GetU32(proto::kTagApplied), 0u);
  EXPECT_EQ(Get("late").status().code(), StatusCode::kNotFound);
}

TEST_F(BackendFixture, TouchRpcFeedsEvictionPolicy) {
  CellOptions o = TinyCell();
  o.backend.data_initial_bytes = 128 * 1024;
  o.backend.data_max_bytes = 256 * 1024;
  o.backend.initial_buckets = 256;
  Init(std::move(o));
  Backend& b = cell->backend(0);
  // Fill to ~half of the pool's chunk capacity; then keep touching key 0
  // so it survives later evictions.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(Set("touch-" + std::to_string(i), 2 * 1024).ok());
  }
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(Get("touch-0").ok());
    RunOp(sim, [](Client* c) -> sim::Task<Status> {
      co_await c->FlushTouches();
      co_return OkStatus();
    }(client));
  }
  EXPECT_GT(b.stats().touches_ingested, 0);
  // Now force some evictions (fewer than the pool holds): the repeatedly
  // touched key must survive while untouched contemporaries are the LRU
  // victims.
  const int64_t evictions_before = b.stats().evictions_capacity;
  for (int i = 100; i < 180; ++i) {
    ASSERT_TRUE(Set("touch-" + std::to_string(i), 2 * 1024).ok());
  }
  ASSERT_GT(b.stats().evictions_capacity, evictions_before);
  EXPECT_TRUE(Get("touch-0").ok());
}

TEST_F(BackendFixture, InfoReportsLayout) {
  Init(TinyCell());
  rpc::RpcChannel ch(cell->rpc_network(), client->host(),
                     cell->backend(0).host());
  auto resp = RunOp(sim, ch.Call(proto::kMethodInfo, {}, sim::Milliseconds(10)));
  ASSERT_TRUE(resp.ok());
  rpc::WireReader r(*resp);
  EXPECT_EQ(r.GetU64(proto::kTagNumBuckets), cell->backend(0).num_buckets());
  EXPECT_EQ(r.GetU32(proto::kTagWays), 4u);
  EXPECT_EQ(r.GetU32(proto::kTagConfigId), cell->backend(0).config_id());
  EXPECT_TRUE(r.GetU32(proto::kTagIndexRegion).has_value());
}

TEST_F(BackendFixture, StoppedBackendRevokesWindows) {
  Init(TinyCell());
  ASSERT_TRUE(Set("k", 64).ok());
  ASSERT_TRUE(Get("k").ok());
  cell->backend(0).Stop();
  auto got = Get("k");
  EXPECT_FALSE(got.ok());
  EXPECT_NE(got.status().code(), StatusCode::kNotFound);
}

TEST_F(BackendFixture, MemoryFootprintTracksLoad) {
  Init(TinyCell());
  const uint64_t empty = cell->backend(0).memory_footprint();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(Set("mem-" + std::to_string(i), 8 * 1024).ok());
  }
  sim.Run();
  EXPECT_GT(cell->backend(0).memory_footprint(), empty);
}

}  // namespace
}  // namespace cm::cliquemap
