#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace cm::sim {
namespace {

TEST(Simulator, TimeAdvancesWithEvents) {
  Simulator sim;
  std::vector<Time> fired;
  sim.PostAt(100, [&] { fired.push_back(sim.now()); });
  sim.PostAt(50, [&] { fired.push_back(sim.now()); });
  sim.PostAt(200, [&] { fired.push_back(sim.now()); });
  sim.Run();
  EXPECT_EQ(fired, (std::vector<Time>{50, 100, 200}));
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.PostAt(10, [&] { order.push_back(1); });
  sim.PostAt(10, [&] { order.push_back(2); });
  sim.PostAt(10, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.PostAt(100, [&] { ++fired; });
  sim.PostAt(300, [&] { ++fired; });
  EXPECT_TRUE(sim.RunUntil(200));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SpawnedTaskRunsAndDelays) {
  Simulator sim;
  std::vector<Time> stamps;
  sim.Spawn([](Simulator& s, std::vector<Time>& out) -> Task<void> {
    out.push_back(s.now());
    co_await s.Delay(Microseconds(5));
    out.push_back(s.now());
    co_await s.Delay(Microseconds(10));
    out.push_back(s.now());
  }(sim, stamps));
  sim.Run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0);
  EXPECT_EQ(stamps[1], Microseconds(5));
  EXPECT_EQ(stamps[2], Microseconds(15));
}

TEST(Simulator, NestedTaskAwait) {
  Simulator sim;
  int result = 0;
  auto child = [](Simulator& s) -> Task<int> {
    co_await s.Delay(100);
    co_return 7;
  };
  sim.Spawn([](Simulator& s, auto child_fn, int& out) -> Task<void> {
    int a = co_await child_fn(s);
    int b = co_await child_fn(s);
    out = a + b;
  }(sim, child, result));
  sim.Run();
  EXPECT_EQ(result, 14);
  EXPECT_EQ(sim.now(), 200);
}

TEST(Simulator, ManyConcurrentTasksInterleave) {
  Simulator sim;
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    sim.Spawn([](Simulator& s, int delay, int& d) -> Task<void> {
      co_await s.Delay(delay);
      ++d;
    }(sim, i * 10, done));
  }
  sim.Run();
  EXPECT_EQ(done, 100);
  EXPECT_EQ(sim.now(), 990);
}

TEST(OneShot, SetBeforeWait) {
  Simulator sim;
  OneShot<int> f(sim);
  f.Set(5);
  int got = 0;
  sim.Spawn([](OneShot<int> f, int& out) -> Task<void> {
    out = co_await f.Wait();
  }(f, got));
  sim.Run();
  EXPECT_EQ(got, 5);
}

TEST(OneShot, SetAfterWait) {
  Simulator sim;
  OneShot<int> f(sim);
  int got = 0;
  sim.Spawn([](OneShot<int> f, int& out) -> Task<void> {
    out = co_await f.Wait();
  }(f, got));
  sim.PostAt(500, [&] { f.Set(9); });
  sim.Run();
  EXPECT_EQ(got, 9);
}

TEST(OneShot, FirstSetWins) {
  Simulator sim;
  OneShot<int> f(sim);
  f.Set(1);
  f.Set(2);
  int got = 0;
  sim.Spawn([](OneShot<int> f, int& out) -> Task<void> {
    out = co_await f.Wait();
  }(f, got));
  sim.Run();
  EXPECT_EQ(got, 1);
}

TEST(OneShot, WaitForTimesOut) {
  Simulator sim;
  OneShot<int> f(sim);
  bool timed_out = false;
  Time when = -1;
  sim.Spawn([](Simulator& s, OneShot<int> f, bool& to, Time& w) -> Task<void> {
    auto v = co_await f.WaitFor(Microseconds(50));
    to = !v.has_value();
    w = s.now();
  }(sim, f, timed_out, when));
  sim.Run();
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(when, Microseconds(50));
}

TEST(OneShot, WaitForDeliversBeforeTimeout) {
  Simulator sim;
  OneShot<int> f(sim);
  std::optional<int> got;
  sim.Spawn([](OneShot<int> f, std::optional<int>& out) -> Task<void> {
    out = co_await f.WaitFor(Microseconds(50));
  }(f, got));
  sim.PostAt(Microseconds(10), [&] { f.Set(3); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 3);
}

TEST(OneShot, LateSetAfterTimeoutIsDropped) {
  Simulator sim;
  OneShot<int> f(sim);
  std::optional<int> got;
  sim.Spawn([](OneShot<int> f, std::optional<int>& out) -> Task<void> {
    out = co_await f.WaitFor(Microseconds(5));
  }(f, got));
  sim.PostAt(Microseconds(100), [&] { f.Set(3); });
  sim.Run();
  EXPECT_FALSE(got.has_value());
}

TEST(Channel, SendThenRecv) {
  Simulator sim;
  Channel<int> ch(sim);
  ch.Send(1);
  ch.Send(2);
  std::vector<int> got;
  sim.Spawn([](Channel<int>& ch, std::vector<int>& out) -> Task<void> {
    out.push_back(co_await ch.Recv());
    out.push_back(co_await ch.Recv());
  }(ch, got));
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, RecvThenSendWakes) {
  Simulator sim;
  Channel<int> ch(sim);
  int got = 0;
  sim.Spawn([](Channel<int>& ch, int& out) -> Task<void> {
    out = co_await ch.Recv();
  }(ch, got));
  sim.PostAt(100, [&] { ch.Send(42); });
  sim.Run();
  EXPECT_EQ(got, 42);
}

TEST(Channel, MultipleWaitersFifo) {
  Simulator sim;
  Channel<int> ch(sim);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](Channel<int>& ch, std::vector<int>& out) -> Task<void> {
      out.push_back(co_await ch.Recv());
    }(ch, got));
  }
  sim.PostAt(10, [&] {
    ch.Send(1);
    ch.Send(2);
    ch.Send(3);
  });
  sim.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, RecvForTimesOutAndChannelStillWorks) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> first;
  int second = 0;
  sim.Spawn([](Channel<int>& ch, std::optional<int>& f,
               int& s) -> Task<void> {
    f = co_await ch.RecvFor(Microseconds(10));
    s = co_await ch.Recv();
  }(ch, first, second));
  sim.PostAt(Microseconds(100), [&] { ch.Send(77); });
  sim.Run();
  EXPECT_FALSE(first.has_value());
  EXPECT_EQ(second, 77);
}

TEST(Channel, RecvForDeliversInTime) {
  Simulator sim;
  Channel<int> ch(sim);
  std::optional<int> got;
  sim.Spawn([](Channel<int>& ch, std::optional<int>& out) -> Task<void> {
    out = co_await ch.RecvFor(Microseconds(100));
  }(ch, got));
  sim.PostAt(Microseconds(10), [&] { ch.Send(5); });
  sim.Run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 5);
}

TEST(Notification, WakesAllWaiters) {
  Simulator sim;
  Notification n(sim);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn([](Notification& n, int& w) -> Task<void> {
      co_await n.Wait();
      ++w;
    }(n, woken));
  }
  sim.PostAt(100, [&] { n.Notify(); });
  sim.Run();
  EXPECT_EQ(woken, 5);
  EXPECT_TRUE(n.HasBeenNotified());
}

TEST(JoinAll, WaitsForEverything) {
  Simulator sim;
  int done = 0;
  Time finished = 0;
  sim.Spawn([](Simulator& s, int& d, Time& f) -> Task<void> {
    std::vector<Task<void>> tasks;
    for (int i = 1; i <= 4; ++i) {
      tasks.push_back([](Simulator& s, int delay, int& d) -> Task<void> {
        co_await s.Delay(delay * 100);
        ++d;
      }(s, i, d));
    }
    co_await JoinAll(s, std::move(tasks));
    f = s.now();
  }(sim, done, finished));
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(finished, 400);
}

TEST(CpuPool, SingleCoreSerializes) {
  Simulator sim;
  CpuPool cpu(sim, CpuConfig{.cores = 1, .cstate_wake_penalty = 0});
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i) {
    sim.Spawn([](Simulator& s, CpuPool& c, std::vector<Time>& d) -> Task<void> {
      co_await c.Run(Microseconds(10));
      d.push_back(s.now());
    }(sim, cpu, done));
  }
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Microseconds(10));
  EXPECT_EQ(done[1], Microseconds(20));
  EXPECT_EQ(done[2], Microseconds(30));
  EXPECT_EQ(cpu.total_busy_ns(), Microseconds(30));
}

TEST(CpuPool, MultiCoreParallelizes) {
  Simulator sim;
  CpuPool cpu(sim, CpuConfig{.cores = 4, .cstate_wake_penalty = 0});
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i) {
    sim.Spawn([](Simulator& s, CpuPool& c, std::vector<Time>& d) -> Task<void> {
      co_await c.Run(Microseconds(10));
      d.push_back(s.now());
    }(sim, cpu, done));
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  for (Time t : done) EXPECT_EQ(t, Microseconds(10));
}

TEST(CpuPool, CStateWakePenaltyAppliesWhenIdle) {
  Simulator sim;
  CpuPool cpu(sim, CpuConfig{.cores = 1,
                             .cstate_idle_threshold = Microseconds(100),
                             .cstate_wake_penalty = Microseconds(5)});
  std::vector<Time> done;
  auto work = [](Simulator& s, CpuPool& c, std::vector<Time>& d) -> Task<void> {
    co_await c.Run(Microseconds(10));
    d.push_back(s.now());
  };
  // First run: core idle since t=0, but now==0 so idle time is 0 -> no
  // penalty... then long idle gap -> penalty applies.
  sim.Spawn(work(sim, cpu, done));
  sim.PostAt(Milliseconds(1), [&] { sim.Spawn(work(sim, cpu, done)); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], Microseconds(10));
  EXPECT_EQ(done[1], Milliseconds(1) + Microseconds(15));  // penalty + work
}

TEST(CpuPool, BusyCoreSkipsPenalty) {
  Simulator sim;
  CpuPool cpu(sim, CpuConfig{.cores = 1,
                             .cstate_idle_threshold = Microseconds(100),
                             .cstate_wake_penalty = Microseconds(5)});
  std::vector<Time> done;
  auto work = [](Simulator& s, CpuPool& c, std::vector<Time>& d) -> Task<void> {
    co_await c.Run(Microseconds(10));
    d.push_back(s.now());
  };
  sim.Spawn(work(sim, cpu, done));
  sim.PostAt(Microseconds(50), [&] { sim.Spawn(work(sim, cpu, done)); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1], Microseconds(60));  // no penalty: idle gap < threshold
}

// A past-time post is clamped to now() (it still runs, after already-queued
// same-time events) and surfaced via posts_in_past() rather than asserting:
// the clock must never run backwards, but the modeling bug is observable.
TEST(Simulator, PastTimePostClampsToNowAndCounts) {
  Simulator sim;
  std::vector<int> order;
  sim.PostAt(100, [&] {
    order.push_back(1);
    sim.PostAt(50, [&] { order.push_back(2); });  // in the past: clamp to 100
    sim.PostAt(100, [&] { order.push_back(3); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.posts_in_past(), 1);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, PastTimeSpawnAfterRunUntil) {
  Simulator sim;
  bool ran = false;
  sim.RunUntil(1000);  // advances now() with an empty queue
  EXPECT_EQ(sim.posts_in_past(), 0);
  sim.PostAt(10, [&] { ran = true; });  // t < now(): clamped, not dropped
  EXPECT_EQ(sim.posts_in_past(), 1);
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 1000);
}

// Event callables are destroyed in a deterministic order: an executed
// event's callable dies immediately after it runs (before the next event
// fires), and unexecuted callables die in wheel order at simulator
// teardown. Regression test for the old const_cast top-pop Step(), where
// destruction piggybacked on priority_queue internals.
TEST(Simulator, CallbackDestructionOrderIsDeterministic) {
  struct Tracker {
    std::vector<int>* log;
    int id;
    bool armed = true;
    Tracker(std::vector<int>* log, int id) : log(log), id(id) {}
    Tracker(Tracker&& o) noexcept
        : log(o.log), id(o.id), armed(std::exchange(o.armed, false)) {}
    Tracker(const Tracker& o) : log(o.log), id(o.id), armed(o.armed) {}
    ~Tracker() {
      if (armed) log->push_back(id);
    }
    void operator()() { log->push_back(100 + id); }
  };

  std::vector<int> log;
  {
    Simulator sim;
    sim.PostAt(10, Tracker(&log, 1));
    sim.PostAt(10, Tracker(&log, 2));
    sim.PostAt(20, Tracker(&log, 3));
    sim.RunUntil(10);
    // Events 1 and 2 ran at t=10; each callable was destroyed right after
    // it ran. Event 3 is still pending.
    EXPECT_EQ(log, (std::vector<int>{101, 1, 102, 2}));
  }
  // Teardown destroyed the pending callable exactly once, without running it.
  EXPECT_EQ(log, (std::vector<int>{101, 1, 102, 2, 3}));
}

}  // namespace
}  // namespace cm::sim
