#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cliquemap/slab.h"
#include "common/rng.h"

namespace cm::cliquemap {
namespace {

SlabConfig SmallSlabs() {
  SlabConfig c;
  c.slab_bytes = 4096;
  c.min_class_bytes = 64;
  return c;
}

TEST(Slab, AllocateAndFree) {
  SlabAllocator a(64 * 1024, 8 * 1024, SmallSlabs());
  auto off = a.Allocate(100);
  ASSERT_TRUE(off.ok());
  EXPECT_GT(a.used_bytes(), 0u);
  a.Free(*off, 100);
  EXPECT_EQ(a.used_bytes(), 0u);
}

TEST(Slab, DistinctOffsetsWhileLive) {
  SlabAllocator a(64 * 1024, 64 * 1024, SmallSlabs());
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    auto off = a.Allocate(200);
    ASSERT_TRUE(off.ok());
    EXPECT_TRUE(seen.insert(*off).second) << "duplicate offset";
  }
}

TEST(Slab, ChunkSizeCoversRequest) {
  SlabAllocator a(64 * 1024, 8 * 1024, SmallSlabs());
  for (uint32_t size : {1u, 64u, 65u, 100u, 1000u, 4000u}) {
    EXPECT_GE(a.ChunkBytesFor(size), size);
  }
}

TEST(Slab, OversizeAllocationRejected) {
  SlabAllocator a(64 * 1024, 8 * 1024, SmallSlabs());
  EXPECT_EQ(a.Allocate(8192).status().code(), StatusCode::kInvalidArgument);
}

TEST(Slab, ExhaustionReportsResourceExhausted) {
  SlabAllocator a(8 * 1024, 8 * 1024, SmallSlabs());  // 2 slabs, no growth
  std::vector<uint64_t> offs;
  for (;;) {
    auto off = a.Allocate(1024);
    if (!off.ok()) {
      EXPECT_EQ(off.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    offs.push_back(*off);
  }
  const size_t per_slab = 4096 / a.ChunkBytesFor(1024);
  EXPECT_EQ(offs.size(), 2 * per_slab);
}

TEST(Slab, FreeingAllowsReuse) {
  SlabAllocator a(4096, 4096, SmallSlabs());
  std::vector<uint64_t> offs;
  for (;;) {
    auto off = a.Allocate(512);
    if (!off.ok()) break;
    offs.push_back(*off);
  }
  ASSERT_FALSE(offs.empty());
  a.Free(offs[0], 512);
  auto again = a.Allocate(512);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, offs[0]);
}

TEST(Slab, SlabRepurposedAcrossClasses) {
  // One slab only: fill with small chunks, free them all, then allocate a
  // large chunk — the slab must be repurposed to the new size class.
  SlabAllocator a(4096, 4096, SmallSlabs());
  std::vector<uint64_t> offs;
  for (;;) {
    auto off = a.Allocate(64);
    if (!off.ok()) break;
    offs.push_back(*off);
  }
  for (auto off : offs) a.Free(off, 64);
  auto big = a.Allocate(2048);
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  // The repurpose invalidated the stale small-class free entries.
  EXPECT_GT(a.used_bytes(), 2000u);
}

TEST(Slab, GrowExtendsCapacity) {
  SlabAllocator a(64 * 1024, 8 * 1024, SmallSlabs());
  EXPECT_EQ(a.populated(), 8 * 1024u);
  EXPECT_TRUE(a.CanGrow());
  uint64_t grown = a.Grow(2.0);
  EXPECT_EQ(grown, 16 * 1024u);
  uint64_t maxed = a.Grow(100.0);
  EXPECT_EQ(maxed, 64 * 1024u);
  EXPECT_FALSE(a.CanGrow());
}

TEST(Slab, GrowMakesRoomForAllocations) {
  SlabAllocator a(64 * 1024, 4096, SmallSlabs());
  std::vector<uint64_t> offs;
  for (;;) {
    auto off = a.Allocate(1024);
    if (!off.ok()) break;
    offs.push_back(*off);
  }
  size_t before = offs.size();
  a.Grow(2.0);
  auto off = a.Allocate(1024);
  EXPECT_TRUE(off.ok());
  EXPECT_GE(*off, before * 0u);  // sanity: allocation succeeded post-grow
}

TEST(Slab, UtilizationTracksUsage) {
  SlabAllocator a(8 * 1024, 8 * 1024, SmallSlabs());
  EXPECT_DOUBLE_EQ(a.Utilization(), 0.0);
  auto off = a.Allocate(4000);
  ASSERT_TRUE(off.ok());
  EXPECT_GT(a.Utilization(), 0.4);
  a.Free(*off, 4000);
  EXPECT_DOUBLE_EQ(a.Utilization(), 0.0);
}

TEST(Slab, DoubleFreeIsTolerated) {
  SlabAllocator a(4096, 4096, SmallSlabs());
  auto off = a.Allocate(512);
  ASSERT_TRUE(off.ok());
  a.Free(*off, 512);
  a.Free(*off, 512);  // stale second free must not corrupt accounting
  EXPECT_EQ(a.used_bytes(), 0u);
  // And the allocator still works.
  EXPECT_TRUE(a.Allocate(512).ok());
}

// Property sweep: allocate/free churn across size classes never corrupts
// the used-bytes accounting and never double-hands-out a live offset.
class SlabChurnTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SlabChurnTest, ChurnInvariants) {
  const uint32_t max_size = GetParam();
  SlabAllocator a(256 * 1024, 64 * 1024, SmallSlabs());
  Rng rng(max_size);
  std::map<uint64_t, uint32_t> live;  // offset -> size
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const auto size = static_cast<uint32_t>(1 + rng.NextBounded(max_size));
      auto off = a.Allocate(size);
      if (off.ok()) {
        auto [it, inserted] = live.emplace(*off, size);
        ASSERT_TRUE(inserted) << "offset handed out twice";
      } else if (a.CanGrow()) {
        a.Grow(2.0);
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBounded(live.size()));
      a.Free(it->first, it->second);
      live.erase(it);
    }
  }
  uint64_t expected_used = 0;
  for (const auto& [off, size] : live) expected_used += a.ChunkBytesFor(size);
  EXPECT_EQ(a.used_bytes(), expected_used);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SlabChurnTest,
                         ::testing::Values(64u, 256u, 1024u, 4000u));

}  // namespace
}  // namespace cm::cliquemap
