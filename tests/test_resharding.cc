// Live resharding & elastic scaling tests.
//
// The timeline test drives a cell through the full elastic lifecycle —
// grow 3->5, up-replicate R=1 -> R=3.2, replace a backend, down-replicate
// back to R=1, shrink 5->3 — with client traffic riding through every
// transition, and checks the productionization invariants:
//
//   E1. Zero wrong-value GETs: every returned value was actually written
//       to that key (no cross-shard leakage, no resurrected erases, no
//       fabricated bytes) at a sequence number that had been issued.
//   E2. Zero lost acknowledged SETs: after the timeline quiesces, every
//       key reads back at a sequence >= the last acked write.
//   E3. Convergence each generation: after every committed transition the
//       replicas of the *current* view agree on every key's version.
//
// A chaos variant layers PR 1's FaultPlan (drops, delays, a healing
// partition, a GC pause) under the same timeline and upholds E1-E3.
// Directed companions pin the erase-vs-migration race and the
// TombstoneCache::FoldIn semantics it relies on.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cliquemap/cell.h"
#include "cliquemap/resharder.h"

namespace cm::cliquemap {
namespace {

constexpr int kKeys = 28;
constexpr int kClients = 2;
constexpr size_t kValueBytes = 48;

std::string KeyName(int k) { return "rk-" + std::to_string(k); }

// Values self-describe: [0] = key index, [1..2] = per-key write sequence
// (little endian), rest = a deterministic fill. Single writer per key makes
// the sequence totally ordered, so "lost acked write" is decidable.
Bytes MakeValue(int k, uint32_t seq) {
  Bytes v(kValueBytes, std::byte(uint8_t(seq * 31 + uint32_t(k))));
  v[0] = std::byte(uint8_t(k));
  v[1] = std::byte(uint8_t(seq & 0xff));
  v[2] = std::byte(uint8_t((seq >> 8) & 0xff));
  return v;
}

// Runs a task to completion while background tasks (config watchers) keep
// the event queue non-empty.
template <typename T>
T Await(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) sim.RunSteps(256);
  EXPECT_TRUE(out->has_value()) << "op did not complete";
  return **out;
}

struct KeyLog {
  uint32_t attempts = 0;   // sequences issued (acked or not)
  int64_t last_acked = -1;  // highest sequence the client saw acked
};

struct TimelineOutcome {
  std::vector<std::string> phase_errors;
  int wrong_values = 0;
  int lost_writes = 0;
  int64_t gets = 0;
  int64_t get_failures = 0;
  std::vector<std::string> failure_detail;
  std::shared_ptr<std::string> current_phase =
      std::make_shared<std::string>("preload");
  std::vector<std::string> divergent;
  ResharderStats reshard;
  int64_t prev_window_gets = 0;
  int64_t stale_gen_rejects = 0;
  int64_t fault_messages = 0;
  BackendStats backends;
};

sim::Task<void> Traffic(sim::Simulator& sim, Client* client, int c,
                        uint64_t seed,
                        std::shared_ptr<std::vector<KeyLog>> logs,
                        std::shared_ptr<bool> trans_done,
                        std::shared_ptr<int> done,
                        std::shared_ptr<TimelineOutcome> out) {
  Rng rng(seed);
  while (!*trans_done) {
    co_await sim.Delay(sim::Microseconds(int64_t(100 + rng.NextBounded(400))));
    const int k = int(rng.NextBounded(kKeys));
    if (rng.NextBool(0.6)) {
      ++out->gets;
      auto got = co_await client->Get(KeyName(k));
      if (!got.ok()) {
        ++out->get_failures;
        out->failure_detail.push_back(
            "t=" + std::to_string(sim.now() / 1000000) + "ms key=" +
            std::to_string(k) + " phase=" + *out->current_phase +
            " view_gen=" + std::to_string(client->view().generation) +
            " trans=" + std::to_string(client->view().transition) +
            " n=" + std::to_string(client->view().num_shards()) + " " +
            got.status().ToString());
        continue;
      }
      const auto& v = got->value;
      bool valid = v.size() == kValueBytes &&
                   uint8_t(v[0]) == uint8_t(k);
      if (valid) {
        const uint32_t seq =
            uint32_t(uint8_t(v[1])) | (uint32_t(uint8_t(v[2])) << 8);
        valid = seq < (*logs)[size_t(k)].attempts;
      }
      if (!valid) ++out->wrong_values;  // E1
    } else if (k % kClients == c) {  // single writer per key
      const uint32_t seq = (*logs)[size_t(k)].attempts++;
      Status s = co_await client->Set(KeyName(k), MakeValue(k, seq));
      if (s.ok() && int64_t(seq) > (*logs)[size_t(k)].last_acked) {
        (*logs)[size_t(k)].last_acked = int64_t(seq);
      }
    }
  }
  ++*done;
}

TimelineOutcome RunTimeline(uint64_t seed, bool with_faults) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR1;
  o.seed = seed;
  o.backend.initial_buckets = 64;
  o.backend.data_initial_bytes = 256 * 1024;
  o.backend.data_max_bytes = 8 * 1024 * 1024;
  Cell cell(sim, std::move(o));
  cell.Start();

  ResharderOptions ro;
  ro.batch_bytes = 4 * 1024;  // several batches per stream
  ro.release_linger = sim::Milliseconds(30);
  Resharder resharder(cell, ro);

  std::shared_ptr<net::FaultPlan> plan;
  if (with_faults) {
    Rng prng(seed * 0x9E3779B97F4A7C15ull + 0x5E5A);
    plan = std::make_shared<net::FaultPlan>(seed);
    net::LinkFaultRates rates;
    rates.drop = 0.001 + prng.NextDouble() * 0.004;
    rates.delay = prng.NextDouble() * 0.05;
    rates.delay_mean = sim::Microseconds(int64_t(20 + prng.NextBounded(80)));
    plan->SetDefaultRates(rates);
    plan->SetActiveWindow(sim::Milliseconds(5), sim::Milliseconds(250));
    // A healing backend->backend partition early in the timeline.
    const auto a = net::HostId(1 + prng.NextBounded(3));
    auto b = net::HostId(1 + prng.NextBounded(3));
    if (b == a) b = 1 + (a % 3);
    plan->AddPartition(a, b, sim::Milliseconds(10), sim::Milliseconds(60));
    // A GC-like pause mid-timeline.
    plan->AddHostPause(net::HostId(1 + prng.NextBounded(3)),
                       sim::Milliseconds(80),
                       sim::Milliseconds(int64_t(1 + prng.NextBounded(3))));
    cell.fabric().InstallFaults(plan);
  }

  std::vector<Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    cc.config_watch_interval = sim::Milliseconds(10);
    clients.push_back(cell.AddClient(cc));
  }

  auto out = std::make_shared<TimelineOutcome>();
  auto logs = std::make_shared<std::vector<KeyLog>>(kKeys);

  // Preload every key (seq 0) before any transition, with acks required.
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(Await(sim, clients[size_t(c)]->Connect()).ok());
  }
  for (int k = 0; k < kKeys; ++k) {
    const uint32_t seq = (*logs)[size_t(k)].attempts++;
    Status s = Await(
        sim, clients[size_t(k % kClients)]->Set(KeyName(k), MakeValue(k, seq)));
    EXPECT_TRUE(s.ok()) << "preload " << k << ": " << s.ToString();
    if (s.ok()) (*logs)[size_t(k)].last_acked = int64_t(seq);
  }
  for (Client* c : clients) c->StartConfigWatcher();

  // Runs one transition with concurrent traffic from every client.
  auto run_phase = [&](const std::string& name,
                       std::function<sim::Task<Status>()> op) {
    *out->current_phase = name;
    auto trans_done = std::make_shared<bool>(false);
    auto trans_status = std::make_shared<Status>(OkStatus());
    auto traffic_done = std::make_shared<int>(0);
    for (int c = 0; c < kClients; ++c) {
      sim.Spawn(Traffic(sim, clients[size_t(c)], c,
                        seed * 977 + uint64_t(c) * 131 + 7, logs, trans_done,
                        traffic_done, out));
    }
    sim.Spawn([](std::function<sim::Task<Status>()> op,
                 std::shared_ptr<Status> st,
                 std::shared_ptr<bool> done) -> sim::Task<void> {
      *st = co_await op();
      *done = true;
    }(std::move(op), trans_status, trans_done));
    while ((!*trans_done || *traffic_done < kClients) && !sim.empty()) {
      sim.RunSteps(256);
    }
    if (!trans_status->ok()) {
      out->phase_errors.push_back(name + ": " + trans_status->ToString());
    }
  };

  // E3: all replicas of the *current* view agree on every key. Under
  // faults, converge with explicit repair rounds first (the periodic
  // repair loop is not running in this test).
  auto check_converged = [&](const std::string& phase) {
    if (with_faults) {
      for (int round = 0; round < 2; ++round) {
        for (uint32_t s = 0; s < cell.num_shards(); ++s) {
          auto done = std::make_shared<bool>(false);
          sim.Spawn([](Backend* b,
                       std::shared_ptr<bool> done) -> sim::Task<void> {
            co_await b->RecoverFromCohort();
            *done = true;
          }(&cell.backend(s), done));
          while (!*done && !sim.empty()) sim.RunSteps(256);
        }
      }
    }
    const CellView& v = cell.config_service().view();
    const uint32_t n = v.num_shards();
    const int reps = ReplicaCount(v.mode);
    for (int k = 0; k < kKeys; ++k) {
      const std::string key = KeyName(k);
      const uint32_t p = PrimaryShard(HashKey(key), n);
      std::optional<VersionNumber> first;
      bool diverged = false;
      int present = 0;
      for (int r = 0; r < reps; ++r) {
        auto vv =
            cell.backend(ReplicaShard(p, uint32_t(r), n)).LookupVersion(key);
        if (vv) {
          ++present;
          if (!first) {
            first = vv;
          } else if (!(*first == *vv)) {
            diverged = true;
          }
        }
      }
      if (present != reps || diverged) {
        out->divergent.push_back(phase + "/" + key +
                                 " present=" + std::to_string(present) +
                                 (diverged ? " diverged" : ""));
      }
    }
  };

  run_phase("grow", [&] { return resharder.Resize(5); });
  check_converged("grow");
  run_phase("up-replicate",
            [&] { return resharder.SetReplication(ReplicationMode::kR32); });
  check_converged("up-replicate");
  run_phase("replace", [&] { return resharder.ReplaceBackend(1); });
  check_converged("replace");
  run_phase("down-replicate",
            [&] { return resharder.SetReplication(ReplicationMode::kR1); });
  check_converged("down-replicate");
  run_phase("shrink", [&] { return resharder.Resize(3); });
  check_converged("shrink");

  // Quiesce: stop the watchers, drain the queue.
  for (Client* c : clients) c->StopConfigWatcher();
  sim.Run();

  // E2: every key must read back at a sequence >= its last acked write.
  for (int k = 0; k < kKeys; ++k) {
    auto got = Await(sim, clients[0]->Get(KeyName(k)));
    if (!got.ok()) {
      ++out->lost_writes;
      continue;
    }
    const auto& v = got->value;
    if (v.size() != kValueBytes || uint8_t(v[0]) != uint8_t(k)) {
      ++out->wrong_values;
      continue;
    }
    const int64_t seq =
        int64_t(uint8_t(v[1])) | (int64_t(uint8_t(v[2])) << 8);
    if (seq < (*logs)[size_t(k)].last_acked) ++out->lost_writes;
  }

  TimelineOutcome result = *out;
  result.reshard = resharder.stats();
  for (const Client* c : clients) {
    result.prev_window_gets += c->stats().prev_window_gets;
    result.stale_gen_rejects += c->stats().stale_generation_rejects;
  }
  if (plan) result.fault_messages = plan->stats().messages;
  result.backends = cell.AggregateBackendStats();
  return result;
}

std::string Describe(const TimelineOutcome& o) {
  std::string s = "gets=" + std::to_string(o.gets) +
                  " failures=" + std::to_string(o.get_failures) +
                  " prev_window=" + std::to_string(o.prev_window_gets) +
                  " stale_gen=" + std::to_string(o.stale_gen_rejects) +
                  " streamed=" + std::to_string(o.reshard.records_streamed) +
                  " dropped=" + std::to_string(o.reshard.entries_dropped) +
                  "\n";
  for (const auto& e : o.phase_errors) s += "phase error: " + e + "\n";
  for (const auto& f : o.failure_detail) s += "get failure: " + f + "\n";
  for (const auto& d : o.divergent) s += "divergent: " + d + "\n";
  return s;
}

class ReshardingTimelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReshardingTimelineTest, FullLifecycleUpholdsInvariants) {
  const uint64_t seed = GetParam();
  TimelineOutcome o = RunTimeline(seed, /*with_faults=*/false);

  EXPECT_TRUE(o.phase_errors.empty()) << "seed " << seed << "\n" << Describe(o);
  EXPECT_EQ(o.wrong_values, 0) << "seed " << seed << "\n" << Describe(o);
  EXPECT_EQ(o.lost_writes, 0) << "seed " << seed << "\n" << Describe(o);
  EXPECT_TRUE(o.divergent.empty()) << "seed " << seed << "\n" << Describe(o);
  // Clean fabric: the cell must be fully available throughout.
  EXPECT_EQ(o.get_failures, 0) << "seed " << seed << "\n" << Describe(o);
  EXPECT_GT(o.gets, 0);

  // The timeline really exercised the machinery.
  EXPECT_EQ(o.reshard.transitions_committed, 5) << Describe(o);
  EXPECT_EQ(o.reshard.backends_added, 3);    // 2 (grow) + 1 (replace)
  EXPECT_EQ(o.reshard.backends_retired, 3);  // 1 (replace) + 2 (shrink)
  EXPECT_GT(o.reshard.records_streamed, 0);
  EXPECT_GT(o.reshard.entries_dropped, 0);  // grow/shrink GC moved keys out
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReshardingTimelineTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

class ReshardingChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReshardingChaosTest, LifecycleUnderFaultsUpholdsInvariants) {
  const uint64_t seed = GetParam();
  TimelineOutcome o = RunTimeline(seed, /*with_faults=*/true);

  EXPECT_GT(o.fault_messages, 0) << "fault plan saw no traffic";
  EXPECT_TRUE(o.phase_errors.empty()) << "seed " << seed << "\n" << Describe(o);
  EXPECT_EQ(o.wrong_values, 0) << "seed " << seed << "\n" << Describe(o);
  EXPECT_EQ(o.lost_writes, 0) << "seed " << seed << "\n" << Describe(o);
  EXPECT_TRUE(o.divergent.empty()) << "seed " << seed << "\n" << Describe(o);
  // Availability may dip under faults (counted, not asserted), but traffic
  // must have flowed.
  EXPECT_GT(o.gets, 0);
  EXPECT_EQ(o.reshard.transitions_committed, 5) << Describe(o);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReshardingChaosTest,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

// ---------------------------------------------------------------------------
// Directed: the erase-vs-migration race
// ---------------------------------------------------------------------------

// A delete that lands at the new owner after the records shipped must not be
// resurrected by a late (duplicate) stream batch: the keyed tombstone wins
// over the older live record.
TEST(ReshardingDirected, LateStreamBatchCannotResurrectErase) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR1;
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();
  Client* client = cell.AddClient();
  ASSERT_TRUE(Await(sim, client->Connect()).ok());

  const std::string key = "victim";
  ASSERT_TRUE(Await(sim, client->Set(key, ToBytes("old-value"))).ok());
  const uint32_t p = PrimaryShard(HashKey(key), cell.num_shards());
  Backend& old_owner = cell.backend(p);

  // The stream the resharder would ship (contains key @ v1).
  const std::vector<proto::BulkRecord> snapshot = old_owner.SnapshotBulk();
  ASSERT_FALSE(snapshot.empty());

  // A fresh backend takes over the slot (old owner moves to the graveyard).
  Backend* fresh = cell.AddBackendForShard(p, /*config_id=*/1);
  const uint32_t nid = cell.config_service().UpdateShard(p, fresh->host());
  fresh->SetConfigId(nid);

  // The delete races ahead of the stream: it lands at the new owner first.
  ASSERT_TRUE(Await(sim, client->Erase(key)).ok());
  EXPECT_EQ(Await(sim, client->Get(key)).status().code(),
            StatusCode::kNotFound);

  // Now the (late) stream batch arrives carrying the old live record.
  Bytes batch;
  for (const auto& rec : snapshot) {
    proto::AppendBulkRecord(batch, rec.key, rec.value, rec.version,
                            rec.erased);
  }
  rpc::WireWriter w;
  w.PutBytes(proto::kTagRecords, batch);
  const net::HostId from = cell.fabric().AddHost(cell.options().client_host);
  rpc::RpcChannel ch(cell.rpc_network(), from, fresh->host());
  auto resp = Await(
      sim, ch.Call(proto::kMethodInstallBulk, std::move(w).Take(),
                   sim::Seconds(1)));
  EXPECT_TRUE(resp.ok()) << resp.status().ToString();

  // Must not resurrect: the tombstone at the new owner outversions v1.
  EXPECT_FALSE(fresh->LookupVersion(key).has_value());
  EXPECT_EQ(Await(sim, client->Get(key)).status().code(),
            StatusCode::kNotFound);
}

// A delete that lands on the *old* owner after it started draining bounces
// with kFailedPrecondition instead of being silently dropped from the
// migration stream (the client retries against the new topology).
TEST(ReshardingDirected, DrainingShardBouncesMutationsButServesReads) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR1;
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();
  Client* client = cell.AddClient();
  ASSERT_TRUE(Await(sim, client->Connect()).ok());

  const std::string key = "drained";
  ASSERT_TRUE(Await(sim, client->Set(key, ToBytes("v1"))).ok());
  const uint32_t p = PrimaryShard(HashKey(key), cell.num_shards());
  cell.backend(p).SetDraining(true);

  // Reads keep being served.
  auto got = Await(sim, client->Get(key));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(ToString(got->value), "v1");

  // Mutations bounce (and are counted) until the drain lifts.
  EXPECT_FALSE(Await(sim, client->Set(key, ToBytes("v2"))).ok());
  EXPECT_FALSE(Await(sim, client->Erase(key)).ok());
  EXPECT_GE(cell.AggregateBackendStats().draining_rejects, 2);

  cell.backend(p).SetDraining(false);
  EXPECT_TRUE(Await(sim, client->Set(key, ToBytes("v3"))).ok());
  got = Await(sim, client->Get(key));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(ToString(got->value), "v3");
}

// ---------------------------------------------------------------------------
// TombstoneCache::FoldIn
// ---------------------------------------------------------------------------

TEST(TombstoneFoldIn, KeepsMaxVersionAndBackfillsKeys) {
  TombstoneCache a(16), b(16);
  const Hash128 h1 = HashKey("k1");
  const Hash128 h2 = HashKey("k2");
  const Hash128 h3 = HashKey("k3");

  a.Record(h1, VersionNumber{10, 1, 1}, "k1");
  a.Record(h2, VersionNumber{50, 1, 1});  // key unknown locally
  b.Record(h1, VersionNumber{30, 2, 1}, "k1");  // newer
  b.Record(h2, VersionNumber{20, 2, 2}, "k2");  // older, but knows the key
  b.Record(h3, VersionNumber{40, 2, 3}, "k3");

  a.FoldIn(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.Find(h1)->tt_micros, 30u);  // max wins
  EXPECT_EQ(a.Find(h2)->tt_micros, 50u);  // local max kept
  EXPECT_EQ(a.entries().at(h2).key, "k2");  // key backfilled from other side
  EXPECT_EQ(a.Find(h3)->tt_micros, 40u);
}

TEST(TombstoneFoldIn, CarriesSummaryAndStaysBounded) {
  TombstoneCache a(16);
  TombstoneCache b(2);  // tiny: forces evictions into the summary
  b.Record(HashKey("e1"), VersionNumber{100, 1, 1}, "e1");
  b.Record(HashKey("e2"), VersionNumber{90, 1, 2}, "e2");
  b.Record(HashKey("e3"), VersionNumber{80, 1, 3}, "e3");  // evicts e1
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.summary().tt_micros, 100u);

  a.FoldIn(b);
  // The folded cache bounds everything the source ever saw: exact entries
  // stay exact, evicted ones via the summary.
  EXPECT_EQ(a.summary().tt_micros, 100u);
  EXPECT_EQ(a.WorstCaseSummary().tt_micros, 100u);
  EXPECT_NE(a.Find(HashKey("e2")), nullptr);
  EXPECT_NE(a.Find(HashKey("e3")), nullptr);
  EXPECT_EQ(a.Find(HashKey("e1")), nullptr);  // evicted -> summary only
  // Monotonicity floor still blocks a stale set of the evicted key.
  EXPECT_EQ(a.Floor(HashKey("e1")).tt_micros, 100u);
}

TEST(TombstoneFoldIn, IdempotentAndSelfFoldSafe) {
  TombstoneCache a(8), b(8);
  b.Record(HashKey("x"), VersionNumber{7, 1, 1}, "x");
  a.FoldIn(b);
  a.FoldIn(b);  // duplicate delivery (retried stream batch)
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(a.Find(HashKey("x"))->tt_micros, 7u);
}

}  // namespace
}  // namespace cm::cliquemap
