#include <gtest/gtest.h>

#include "cliquemap/layout.h"

namespace cm::cliquemap {
namespace {

TEST(VersionNumber, TotalOrder) {
  VersionNumber a{100, 1, 1};
  VersionNumber b{100, 1, 2};
  VersionNumber c{100, 2, 1};
  VersionNumber d{101, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // client id breaks TrueTime ties
  EXPECT_LT(c, d);  // TrueTime dominates
  EXPECT_TRUE(VersionNumber{}.is_zero());
  EXPECT_FALSE(a.is_zero());
}

TEST(IndexEntry, RoundTrip) {
  IndexEntry e;
  e.keyhash = Hash128{0x1122334455667788ull, 0x99aabbccddeeff00ull};
  e.version = VersionNumber{123456789, 42, 7};
  e.pointer = Pointer{3, 4096, 0xdeadbeef};
  std::byte buf[kIndexEntrySize];
  EncodeIndexEntry(MutableByteSpan(buf, sizeof(buf)), e);
  IndexEntry d = DecodeIndexEntry(ByteSpan(buf, sizeof(buf)));
  EXPECT_EQ(d, e);
}

TEST(IndexEntry, ZeroHashMeansEmpty) {
  std::byte buf[kIndexEntrySize] = {};
  EXPECT_TRUE(DecodeIndexEntry(ByteSpan(buf, sizeof(buf))).empty());
}

TEST(BucketHeader, RoundTripAndOverflowFlag) {
  std::byte buf[kBucketHeaderSize];
  EncodeBucketHeader(MutableByteSpan(buf, sizeof(buf)),
                     BucketHeader{777, true});
  BucketHeader h = DecodeBucketHeader(ByteSpan(buf, sizeof(buf)));
  EXPECT_EQ(h.config_id, 777u);
  EXPECT_TRUE(h.overflow);
  EncodeBucketHeader(MutableByteSpan(buf, sizeof(buf)),
                     BucketHeader{778, false});
  EXPECT_FALSE(DecodeBucketHeader(ByteSpan(buf, sizeof(buf))).overflow);
}

TEST(BucketLayout, SizeArithmetic) {
  EXPECT_EQ(BucketBytes(20), 16u + 20u * 48u);  // ~1KB buckets (paper)
}

TEST(DataEntry, RoundTripWithChecksum) {
  const std::string key = "the-key";
  const Bytes value = ToBytes("the-value-payload");
  const Hash128 hash = HashKey(key);
  const VersionNumber version{55, 6, 7};
  Bytes buf(DataEntryBytes(key.size(), value.size()));
  EncodeDataEntry(buf, key, value, hash, version);

  auto view = DecodeDataEntry(buf);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->key, key);
  EXPECT_EQ(ToString(view->value), "the-value-payload");
  EXPECT_EQ(view->keyhash, hash);
  EXPECT_EQ(view->version, version);
}

TEST(DataEntry, EmptyKeyAndValue) {
  Bytes buf(DataEntryBytes(0, 0));
  EncodeDataEntry(buf, "", {}, Hash128{1, 2}, VersionNumber{1, 1, 1});
  auto view = DecodeDataEntry(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view->key.empty());
  EXPECT_TRUE(view->value.empty());
}

TEST(DataEntry, TornValueFailsChecksum) {
  const std::string key = "k";
  const Bytes value = ToBytes("vvvvvvvvvvvvvvvv");
  Bytes buf(DataEntryBytes(key.size(), value.size()));
  EncodeDataEntry(buf, key, value, HashKey(key), VersionNumber{1, 1, 1});
  buf[kDataEntryHeaderSize + 3] ^= std::byte{0xff};  // tear a value byte
  auto view = DecodeDataEntry(buf);
  EXPECT_EQ(view.status().code(), StatusCode::kAborted);
}

TEST(DataEntry, TornVersionFailsChecksum) {
  Bytes buf(DataEntryBytes(1, 4));
  EncodeDataEntry(buf, "k", ToBytes("val!"), HashKey("k"),
                  VersionNumber{9, 9, 9});
  buf[24] ^= std::byte{0x01};  // flip a version bit
  EXPECT_EQ(DecodeDataEntry(buf).status().code(), StatusCode::kAborted);
}

TEST(DataEntry, TruncatedBufferAborts) {
  Bytes buf(DataEntryBytes(3, 10));
  EncodeDataEntry(buf, "abc", ToBytes("0123456789"), HashKey("abc"),
                  VersionNumber{1, 1, 1});
  ByteSpan truncated = ByteSpan(buf).first(buf.size() - 5);
  EXPECT_EQ(DecodeDataEntry(truncated).status().code(), StatusCode::kAborted);
}

TEST(DataEntry, GarbageLengthsAbortSafely) {
  Bytes buf(64, std::byte{0xff});  // klen/vlen decode as huge
  EXPECT_EQ(DecodeDataEntry(buf).status().code(), StatusCode::kAborted);
}

TEST(DataEntry, RewriteVersionKeepsChecksumValid) {
  const std::string key = "bump-me";
  const Bytes value = ToBytes("payload");
  Bytes buf(DataEntryBytes(key.size(), value.size()));
  EncodeDataEntry(buf, key, value, HashKey(key), VersionNumber{1, 1, 1});

  const VersionNumber fresh{999, 8, 3};
  ASSERT_TRUE(RewriteDataEntryVersion(buf, fresh).ok());
  auto view = DecodeDataEntry(buf);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->version, fresh);
  EXPECT_EQ(view->key, key);  // payload untouched
}

TEST(DataEntry, RewriteVersionOnTornEntryFails) {
  Bytes buf(DataEntryBytes(1, 4));
  EncodeDataEntry(buf, "k", ToBytes("val!"), HashKey("k"),
                  VersionNumber{1, 1, 1});
  buf[45] ^= std::byte{0x10};
  EXPECT_FALSE(RewriteDataEntryVersion(buf, VersionNumber{2, 2, 2}).ok());
}

TEST(Placement, ReplicasAreAdjacentModN) {
  // §5.1: copies on physical backends i, i+1, i+2 (all mod N).
  Hash128 h = HashKey("some-key");
  const uint32_t n = 10;
  uint32_t p = PrimaryShard(h, n);
  EXPECT_EQ(ReplicaShard(p, 0, n), p);
  EXPECT_EQ(ReplicaShard(p, 1, n), (p + 1) % n);
  EXPECT_EQ(ReplicaShard(p, 2, n), (p + 2) % n);
}

TEST(Placement, BucketIndexStableUnderSameSize) {
  Hash128 h = HashKey("bucket-key");
  EXPECT_EQ(BucketIndex(h, 64), BucketIndex(h, 64));
  // Different index sizes map differently (resize moves keys).
  bool any_diff = false;
  for (int i = 0; i < 32 && !any_diff; ++i) {
    Hash128 hh = HashKey("k" + std::to_string(i));
    any_diff = BucketIndex(hh, 64) != BucketIndex(hh, 128) % 64;
  }
  SUCCEED();
}

TEST(Modes, ReplicaAndQuorumCounts) {
  EXPECT_EQ(ReplicaCount(ReplicationMode::kR1), 1);
  EXPECT_EQ(ReplicaCount(ReplicationMode::kR2Immutable), 2);
  EXPECT_EQ(ReplicaCount(ReplicationMode::kR32), 3);
  EXPECT_EQ(QuorumSize(ReplicationMode::kR32), 2);
  EXPECT_EQ(QuorumSize(ReplicationMode::kR1), 1);
  EXPECT_EQ(QuorumSize(ReplicationMode::kR2Immutable), 1);
}

}  // namespace
}  // namespace cm::cliquemap
