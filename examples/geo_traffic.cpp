// Geo-style serving (§7.1): road-segment traffic predictions served from
// CliqueMap while a model-update pipeline continuously refreshes the
// corpus in the background.
//
// Demonstrates: concurrent reader + writer jobs, diurnal load, and reading
// your own (recently updated) writes through the quorum.
#include <cstdio>
#include <memory>
#include <optional>

#include "cliquemap/cell.h"
#include "workload/workload.h"

using namespace cm;
using namespace cm::cliquemap;
using namespace cm::workload;

int main() {
  std::printf("Geo traffic serving on CliqueMap\n"
              "================================\n\n");
  sim::Simulator sim;
  CellOptions options;
  options.num_shards = 6;
  options.mode = ReplicationMode::kR32;
  options.backend.data_initial_bytes = 8 << 20;
  options.backend.data_max_bytes = 64 << 20;
  Cell cell(sim, options);
  cell.Start();

  Client* reader = cell.AddClient();
  ClientConfig writer_config;
  writer_config.client_id = 77;
  Client* writer = cell.AddClient(writer_config);

  constexpr int kSegments = 2000;
  auto done = std::make_shared<int>(0);

  // Writer job: load the corpus, then continuously refresh segments (the
  // model "experiences a high update rate").
  sim.Spawn([](sim::Simulator& sim, Client* writer,
               std::shared_ptr<int> done) -> sim::Task<void> {
    (void)co_await writer->Connect();
    Rng rng(1);
    SizeDistribution sizes = SizeDistribution::Geo();
    for (int s = 0; s < kSegments; ++s) {
      (void)co_await writer->Set("segment/" + std::to_string(s),
                                 Bytes(sizes.Sample(rng), std::byte{1}));
    }
    std::printf("[writer] corpus loaded (%d segments)\n", kSegments);
    // Continuous background updates for 2 simulated seconds.
    const sim::Time end = sim.now() + sim::Seconds(2);
    int updates = 0;
    while (sim.now() < end) {
      co_await sim.Delay(sim::Microseconds(500));
      (void)co_await writer->Set(
          "segment/" + std::to_string(rng.NextBounded(kSegments)),
          Bytes(sizes.Sample(rng), std::byte{2}));
      ++updates;
    }
    std::printf("[writer] %d background updates applied\n", updates);
    ++*done;
  }(sim, writer, done));

  // Reader job: diurnal batched lookups ("driving directions" requests).
  auto latency = std::make_shared<Histogram>();
  sim.Spawn([](sim::Simulator& sim, Client* reader,
               std::shared_ptr<Histogram> latency,
               std::shared_ptr<int> done) -> sim::Task<void> {
    (void)co_await reader->Connect();
    co_await sim.Delay(sim::Milliseconds(300));  // let the corpus load
    Rng rng(2);
    DiurnalRate diurnal(3.0, sim::Seconds(1));  // compressed "day"
    BatchDistribution batches(12, 80);
    ZipfSampler zipf(kSegments, 0.8);
    const sim::Time end = sim.now() + sim::Seconds(1700) / 1000;
    int64_t hits = 0, lookups = 0;
    while (sim.now() < end) {
      const double rate = 2000.0 * diurnal.MultiplierAt(sim.now());
      co_await sim.Delay(sim::Duration(1e9 / rate));
      std::vector<std::string> keys;
      const uint32_t batch = batches.Sample(rng);
      for (uint32_t i = 0; i < batch; ++i) {
        keys.push_back("segment/" + std::to_string(zipf.Sample(rng)));
      }
      const sim::Time start = sim.now();
      auto batch_result = co_await reader->MultiGet(std::move(keys));
      latency->Record(sim.now() - start);
      for (const auto& r : batch_result.results) {
        ++lookups;
        if (r.ok()) ++hits;
      }
    }
    std::printf("[reader] %lld segment lookups, %.2f%% hit rate\n",
                (long long)lookups, 100.0 * double(hits) / double(lookups));
    ++*done;
  }(sim, reader, latency, done));

  while (*done < 2 && !sim.empty()) sim.RunSteps(1);

  std::printf("[reader] route-batch latency: %s\n",
              latency->Summary(1000.0, "us").c_str());
  std::printf("\nDespite the continuous background update stream, reads stay\n"
              "consistent (version quorums) and fast (one-sided lookups).\n");
  return 0;
}
