// Polyglot access (§6.2): the same corpus reached from C++, Java, Go, and
// Python via language shims — each shim speaking the framed pipe protocol
// to a C++ client "subprocess", so nobody reimplements the RMA client.
#include <cstdio>
#include <memory>
#include <optional>

#include "cliquemap/cell.h"
#include "cliquemap/shim.h"

using namespace cm;
using namespace cm::cliquemap;

template <typename T>
T Run(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) sim.RunSteps(1);
  return **out;
}

int main() {
  std::printf("Polyglot CliqueMap access\n=========================\n\n");
  sim::Simulator sim;
  CellOptions options;
  options.num_shards = 3;
  options.mode = ReplicationMode::kR32;
  Cell cell(sim, options);
  cell.Start();

  // One client subprocess per language shim (as the real shims launch).
  struct Binding {
    ShimLanguage lang;
    Client* client;
    std::unique_ptr<LanguageShim> shim;
  };
  std::vector<Binding> bindings;
  for (ShimLanguage lang : {ShimLanguage::kCpp, ShimLanguage::kJava,
                            ShimLanguage::kGo, ShimLanguage::kPython}) {
    ClientConfig cc;
    cc.client_id = uint32_t(bindings.size() + 1);
    Client* client = cell.AddClient(cc);
    (void)Run(sim, client->Connect());
    bindings.push_back(Binding{lang, client, nullptr});
    bindings.back().shim = std::make_unique<LanguageShim>(client, lang);
  }

  // Each language writes a key; every other language reads it back — one
  // corpus, many runtimes, no per-language RMA code.
  for (auto& writer : bindings) {
    const std::string key =
        std::string("written-by-") + std::string(ShimLanguageName(writer.lang));
    Status s = Run(sim, writer.shim->Set(
                            key, ToBytes("hello from " +
                                         std::string(ShimLanguageName(
                                             writer.lang)))));
    std::printf("%-4s SET %-18s -> %s\n", ShimLanguageName(writer.lang).data(),
                key.c_str(), s.ToString().c_str());
  }
  std::printf("\n");
  for (auto& reader : bindings) {
    for (auto& writer : bindings) {
      const std::string key = std::string("written-by-") +
                              std::string(ShimLanguageName(writer.lang));
      sim::Time t0 = sim.now();
      auto got = Run(sim, reader.shim->Get(key));
      std::printf("%-4s GET %-18s -> %-22s (%.1f us)\n",
                  ShimLanguageName(reader.lang).data(), key.c_str(),
                  got.ok() ? ToString(got->value).c_str()
                           : got.status().ToString().c_str(),
                  double(sim.now() - t0) / 1000.0);
    }
  }

  std::printf("\npipe messages per shim: ");
  for (auto& b : bindings) {
    std::printf("%s=%lld ", ShimLanguageName(b.lang).data(),
                (long long)b.shim->messages());
  }
  std::printf("(cpp is native: 0)\n");
  std::printf("\nNote the latency gradient cpp < java < go < py — the price\n"
              "of pipe hops and in-language marshaling (Fig 6), accepted to\n"
              "avoid maintaining four RMA client implementations.\n");
  return 0;
}
