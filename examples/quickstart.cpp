// Quickstart: deploy a CliqueMap cell, perform the basic operations, and
// inspect what the dataplane actually did.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>
#include <memory>
#include <optional>

#include "cliquemap/cell.h"

using namespace cm;
using namespace cm::cliquemap;

// Everything in CliqueMap is a coroutine scheduled on the simulated
// datacenter; this helper runs one operation to completion.
template <typename T>
T Run(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) sim.RunSteps(1);
  return **out;
}

int main() {
  std::printf("CliqueMap quickstart\n====================\n\n");

  // 1. Deploy a cell: 4 backend tasks, R=3.2 replication (3 replicas,
  //    quorum of 2), software-NIC transport with SCAR lookups.
  sim::Simulator sim;
  CellOptions options;
  options.num_shards = 4;
  options.mode = ReplicationMode::kR32;
  options.transport = TransportKind::kSoftNic;
  Cell cell(sim, options);
  cell.Start();
  std::printf("deployed a %u-backend R=3.2 cell\n", cell.num_shards());

  // 2. Connect a client (fetches the cell view from the config service;
  //    per-backend RMA handshakes happen lazily).
  Client* client = cell.AddClient();
  Status s = Run(sim, client->Connect());
  std::printf("client connected: %s\n\n", s.ToString().c_str());

  // 3. SET — an RPC fanned out to all three replicas with a client-
  //    nominated {TrueTime, ClientId, Seq} version.
  s = Run(sim, client->Set("greeting", ToBytes("hello, CliqueMap")));
  std::printf("SET greeting        -> %s\n", s.ToString().c_str());

  // 4. GET — one-sided: SCAR index+data fetches from all replicas, a
  //    client-side version quorum, checksum validation end-to-end.
  auto got = Run(sim, client->Get("greeting"));
  std::printf("GET greeting        -> '%s' at version %s\n",
              ToString(got->value).c_str(), got->version.ToString().c_str());

  // 5. CAS — conditional update against the memoized version.
  auto swapped = Run(sim, client->Cas("greeting", ToBytes("hello again"),
                                      got->version));
  std::printf("CAS (right version) -> applied=%s\n", *swapped ? "yes" : "no");
  swapped = Run(sim, client->Cas("greeting", ToBytes("stale write"),
                                 got->version));
  std::printf("CAS (stale version) -> applied=%s\n", *swapped ? "yes" : "no");

  // 6. ERASE — tombstoned so no late SET can resurrect the value.
  s = Run(sim, client->Erase("greeting"));
  std::printf("ERASE greeting      -> %s\n", s.ToString().c_str());
  got = Run(sim, client->Get("greeting"));
  std::printf("GET after erase     -> %s\n\n", got.status().ToString().c_str());

  // 7. What did the dataplane do?
  const ClientStats& cs = client->stats();
  std::printf("client stats: gets=%lld hits=%lld misses=%lld retries=%lld "
              "torn_reads=%lld\n",
              (long long)cs.gets, (long long)cs.hits, (long long)cs.misses,
              (long long)cs.retries, (long long)cs.torn_reads);
  int64_t backend_cpu = 0;
  for (uint32_t i = 0; i < cell.num_shards(); ++i) {
    backend_cpu += cell.fabric().host(cell.backend(i).host()).cpu().total_busy_ns();
  }
  std::printf("GET latency: %s\n",
              cs.get_latency_ns.Summary(1000.0, "us").c_str());
  std::printf("total backend host CPU consumed: %.1f us "
              "(mutations only — GETs never touch it)\n",
              double(backend_cpu) / 1000.0);
  return 0;
}
