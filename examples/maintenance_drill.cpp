// Maintenance drill: walk a cell through the events production CliqueMap
// handles weekly — a planned binary rollout (warm-spare migration, §6.1)
// and an unplanned crash (cohort repair, §5.4) — while a client keeps
// serving traffic and we narrate what the system does.
#include <cstdio>
#include <memory>
#include <optional>

#include "cliquemap/cell.h"

using namespace cm;
using namespace cm::cliquemap;

template <typename T>
T Run(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) sim.RunSteps(1);
  return **out;
}

int HitCount(sim::Simulator& sim, Client* client, int n) {
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (Run(sim, client->Get("drill-" + std::to_string(i))).ok()) ++hits;
  }
  return hits;
}

int main() {
  std::printf("CliqueMap maintenance drill\n===========================\n\n");
  sim::Simulator sim;
  CellOptions options;
  options.num_shards = 4;
  options.mode = ReplicationMode::kR32;
  options.num_spares = 1;
  options.restart_duration = sim::Seconds(30);
  Cell cell(sim, options);
  cell.Start();
  Client* client = cell.AddClient();
  (void)Run(sim, client->Connect());

  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    (void)Run(sim, client->Set("drill-" + std::to_string(i),
                               Bytes(512, std::byte{7})));
  }
  std::printf("corpus loaded: %d keys across 4 backends (R=3.2 + 1 spare)\n",
              kKeys);
  std::printf("baseline hits: %d/%d\n\n", HitCount(sim, client, kKeys), kKeys);

  // --- Planned maintenance ------------------------------------------------
  std::printf("[1] planned rollout of backend 0\n");
  std::printf("    -> notified; migrating shard to warm spare over RPC...\n");
  const int64_t bytes_before = cell.TotalRpcBytes();
  Status s = Run(sim, cell.PlannedMaintenance(0));
  std::printf("    -> %s; %lld RPC bytes moved (out + back)\n",
              s.ToString().c_str(),
              static_cast<long long>(cell.TotalRpcBytes() - bytes_before));
  std::printf("    hits after rollout: %d/%d  (client rediscovered the\n"
              "    serving task via bucket config-id / cell view refresh)\n\n",
              HitCount(sim, client, kKeys), kKeys);

  // --- Unplanned crash -----------------------------------------------------
  std::printf("[2] unplanned crash of backend 2\n");
  cell.CrashShard(2);
  std::printf("    -> crashed; R=3.2 keeps serving from the 2/3 quorum\n");
  std::printf("    hits while degraded: %d/%d\n", HitCount(sim, client, kKeys),
              kKeys);
  std::printf("    -> restarting and repairing from the cohort...\n");
  s = Run(sim, cell.CrashAndRestart(2, sim::Seconds(5)));
  const BackendStats agg = cell.AggregateBackendStats();
  std::printf("    -> %s; backend 2 recovered %zu entries\n",
              s.ToString().c_str(), cell.backend(2).live_entries());
  std::printf("    repairs issued so far (cell-wide): %lld\n",
              static_cast<long long>(agg.repairs_issued));
  std::printf("    hits after recovery: %d/%d\n\n",
              HitCount(sim, client, kKeys), kKeys);

  // --- Background repair loops ---------------------------------------------
  std::printf("[3] enabling periodic cohort scans (anti-entropy)\n");
  for (uint32_t b = 0; b < cell.num_shards(); ++b) {
    cell.backend(b).StartRepairLoop(sim::Seconds(30));
  }
  sim.RunUntil(sim.now() + sim::Seconds(65));
  std::printf("    scans run: %lld (every 30s per backend, as in production\n"
              "    where the inter-scan interval is 'tens of seconds')\n",
              static_cast<long long>(cell.AggregateBackendStats().repair_scans));
  for (uint32_t b = 0; b < cell.num_shards(); ++b) {
    cell.backend(b).StopRepairLoop();
  }

  std::printf("\nclient-side view of the whole drill: retries=%lld "
              "config_refreshes=%lld errors=%lld\n",
              (long long)client->stats().retries,
              (long long)client->stats().config_refreshes,
              (long long)client->stats().get_errors);
  return 0;
}
