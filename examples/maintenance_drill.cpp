// Maintenance drill: walk a cell through the events production CliqueMap
// handles weekly — a planned binary rollout (warm-spare migration, §6.1)
// and an unplanned crash (cohort repair, §5.4) — while a client keeps
// serving traffic and we narrate what the system does.
#include <cstdio>
#include <memory>
#include <optional>

#include "cliquemap/cell.h"
#include "cliquemap/doctor.h"
#include "cliquemap/resharder.h"

using namespace cm;
using namespace cm::cliquemap;

template <typename T>
T Run(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) sim.RunSteps(1);
  return **out;
}

int HitCount(sim::Simulator& sim, Client* client, int n,
             GetOptions opts = {}) {
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (Run(sim, client->Get("drill-" + std::to_string(i), opts)).ok()) ++hits;
  }
  return hits;
}

int main() {
  std::printf("CliqueMap maintenance drill\n===========================\n\n");
  sim::Simulator sim;
  CellOptions options;
  options.num_shards = 4;
  options.mode = ReplicationMode::kR32;
  options.num_spares = 1;
  options.restart_duration = sim::Seconds(30);
  Cell cell(sim, options);
  cell.Start();
  Client* client = cell.AddClient();
  (void)Run(sim, client->Connect());

  constexpr int kKeys = 200;
  for (int i = 0; i < kKeys; ++i) {
    (void)Run(sim, client->Set("drill-" + std::to_string(i),
                               Bytes(512, std::byte{7})));
  }
  std::printf("corpus loaded: %d keys across 4 backends (R=3.2 + 1 spare)\n",
              kKeys);
  std::printf("baseline hits: %d/%d\n\n", HitCount(sim, client, kKeys), kKeys);

  // --- Planned maintenance ------------------------------------------------
  std::printf("[1] planned rollout of backend 0\n");
  std::printf("    -> notified; migrating shard to warm spare over RPC...\n");
  const int64_t bytes_before = cell.TotalRpcBytes();
  Status s = Run(sim, cell.PlannedMaintenance(0));
  std::printf("    -> %s; %lld RPC bytes moved (out + back)\n",
              s.ToString().c_str(),
              static_cast<long long>(cell.TotalRpcBytes() - bytes_before));
  std::printf("    hits after rollout: %d/%d  (client rediscovered the\n"
              "    serving task via bucket config-id / cell view refresh)\n\n",
              HitCount(sim, client, kKeys), kKeys);

  // --- Unplanned crash -----------------------------------------------------
  std::printf("[2] unplanned crash of backend 2\n");
  cell.CrashShard(2);
  std::printf("    -> crashed; R=3.2 keeps serving from the 2/3 quorum\n");
  std::printf("    hits while degraded: %d/%d\n", HitCount(sim, client, kKeys),
              kKeys);
  std::printf("    -> restarting and repairing from the cohort...\n");
  s = Run(sim, cell.CrashAndRestart(2, sim::Seconds(5)));
  const BackendStats agg = cell.AggregateBackendStats();
  std::printf("    -> %s; backend 2 recovered %zu entries\n",
              s.ToString().c_str(), cell.backend(2).live_entries());
  std::printf("    repairs issued so far (cell-wide): %lld\n",
              static_cast<long long>(agg.repairs_issued));
  std::printf("    hits after recovery: %d/%d\n\n",
              HitCount(sim, client, kKeys), kKeys);

  // --- Background repair loops ---------------------------------------------
  std::printf("[3] enabling periodic cohort scans (anti-entropy)\n");
  for (uint32_t b = 0; b < cell.num_shards(); ++b) {
    cell.backend(b).StartRepairLoop(sim::Seconds(30));
  }
  sim.RunUntil(sim.now() + sim::Seconds(65));
  std::printf("    scans run: %lld (every 30s per backend, as in production\n"
              "    where the inter-scan interval is 'tens of seconds')\n",
              static_cast<long long>(cell.AggregateBackendStats().repair_scans));
  for (uint32_t b = 0; b < cell.num_shards(); ++b) {
    cell.backend(b).StopRepairLoop();
  }

  std::printf("\nclient-side view of the whole drill: retries=%lld "
              "config_refreshes=%lld errors=%lld\n",
              (long long)client->stats().retries,
              (long long)client->stats().config_refreshes,
              (long long)client->stats().get_errors);

  // --- Correlated failure: a whole domain dies ----------------------------
  std::printf("\n[4] domain-outage drill (fresh 6-backend cell, 3 racks)\n");
  sim::Simulator dsim;
  CellOptions dopt;
  dopt.num_shards = 6;
  dopt.mode = ReplicationMode::kR32;
  // Racked adjacently — the spread-violating layout an operator inherits.
  dopt.failure_domains = {"rackA", "rackA", "rackB", "rackB", "rackC",
                          "rackC"};
  Cell dcell(dsim, std::move(dopt));
  dcell.Start();
  Client* dclient = dcell.AddClient();
  (void)Run(dsim, dclient->Connect());
  for (int i = 0; i < kKeys; ++i) {
    (void)Run(dsim, dclient->Set("drill-" + std::to_string(i),
                                 Bytes(512, std::byte{9})));
  }

  ConfigService& dcfg = dcell.config_service();
  std::printf("    spread violations in the inherited layout: %d\n",
              DomainSpreadViolations(dcfg.view()));
  Resharder dresharder(dcell);
  Status rs = Run(dsim, dresharder.RebalanceDomains());
  std::printf("    -> RebalanceDomains: %s; %lld slots moved, violations "
              "now %d\n",
              rs.ToString().c_str(),
              static_cast<long long>(dresharder.stats().domain_slots_moved),
              DomainSpreadViolations(dcfg.view()));

  std::printf("    -> rackA loses power (every backend in it, at once)\n");
  for (uint32_t s = 0; s < dcell.num_shards(); ++s) {
    if (dcell.backend(s).config().failure_domain == "rackA") {
      dcell.CrashShard(s);
    }
  }
  std::printf("    hits on 2/3 quorums (spread placement, fail-fast): "
              "%d/%d\n",
              HitCount(dsim, dclient, kKeys), kKeys);

  std::printf("    -> and one rackB backend dies too (beyond tolerance)\n");
  for (uint32_t s = 0; s < dcell.num_shards(); ++s) {
    if (dcell.backend(s).config().failure_domain == "rackB") {
      dcell.CrashShard(s);
      break;
    }
  }
  const int fail_fast_hits = HitCount(dsim, dclient, kKeys);
  const int degraded_hits =
      HitCount(dsim, dclient, kKeys, {.degraded = true});
  std::printf("    hits fail-fast: %d/%d   hits degraded (flagged, "
              "best-effort): %d/%d\n",
              fail_fast_hits, kKeys, degraded_hits, kKeys);

  DoctorOptions docopt;
  docopt.probe_interval = sim::Milliseconds(5);
  docopt.probe_timeout = sim::Milliseconds(2);
  docopt.suspect_after_misses = 2;
  docopt.dead_after_misses = 4;
  docopt.heartbeat_interval = sim::Milliseconds(5);
  docopt.lease_duration = sim::Milliseconds(25);
  docopt.max_concurrent_recoveries = 2;
  CellDoctor ddoctor(dcell, docopt);
  ddoctor.Start();
  std::printf("    -> doctor started; rebuilding worst-exposed shards "
              "first...\n");
  const sim::Time limit = dsim.now() + sim::Seconds(30);
  while (ddoctor.stats().recoveries_succeeded < 3 && dsim.now() < limit &&
         !dsim.empty()) {
    dsim.RunSteps(256);
  }
  std::printf("    -> recoveries=%lld domain_down_events=%lld (zero "
              "operator calls)\n",
              (long long)ddoctor.stats().recoveries_succeeded,
              (long long)ddoctor.stats().domain_down_events);
  std::printf("    hits after unattended heal: %d/%d\n",
              HitCount(dsim, dclient, kKeys), kKeys);
  ddoctor.Stop();
  return 0;
}
