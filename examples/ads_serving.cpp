// Ads-style serving (§7.1): an auction front-end fetches a batch of topic-
// keyed advertising candidates from an R=3.2 CliqueMap cell under a strict
// response deadline — late responses forfeit the auction (and revenue).
//
// Demonstrates: batched MultiGet, deadline accounting, and why GET tail
// latency is the metric that matters for this workload.
#include <cstdio>
#include <memory>
#include <optional>

#include "cliquemap/cell.h"
#include "workload/workload.h"

using namespace cm;
using namespace cm::cliquemap;
using namespace cm::workload;

template <typename T>
T Run(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) sim.RunSteps(1);
  return **out;
}

int main() {
  std::printf("Ads auction serving on CliqueMap\n"
              "================================\n\n");
  sim::Simulator sim;
  CellOptions options;
  options.num_shards = 6;
  options.mode = ReplicationMode::kR32;
  options.backend.data_initial_bytes = 16 << 20;
  options.backend.data_max_bytes = 128 << 20;
  options.backend.slab.slab_bytes = 1 << 20;
  Cell cell(sim, options);
  cell.Start();
  Client* client = cell.AddClient();
  (void)Run(sim, client->Connect());

  // Load the ad-candidate corpus, keyed by topic.
  constexpr int kTopics = 3000;
  Rng rng(42);
  SizeDistribution sizes = SizeDistribution::Ads();
  std::printf("loading %d topic-keyed candidate lists...\n", kTopics);
  for (int t = 0; t < kTopics; ++t) {
    Status s = Run(sim, client->Set("topic/" + std::to_string(t),
                                    Bytes(sizes.Sample(rng), std::byte{0xAD})));
    if (!s.ok()) {
      std::printf("load failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // Run auctions: each fetches a batch of topics under a 5ms deadline.
  constexpr int kAuctions = 500;
  const sim::Duration kAuctionDeadline = sim::Milliseconds(5);
  BatchDistribution batches(24, 300);
  ZipfSampler zipf(kTopics, 0.99);
  Histogram batch_latency;
  int on_time = 0, late = 0;
  int64_t fetched = 0;
  for (int a = 0; a < kAuctions; ++a) {
    const uint32_t batch = batches.Sample(rng);
    std::vector<std::string> keys;
    keys.reserve(batch);
    for (uint32_t i = 0; i < batch; ++i) {
      keys.push_back("topic/" + std::to_string(zipf.Sample(rng)));
    }
    const sim::Time start = sim.now();
    auto batch_result = Run(sim, client->MultiGet(std::move(keys)));
    const sim::Duration took = sim.now() - start;
    batch_latency.Record(took);
    for (const auto& r : batch_result.results) {
      if (r.ok()) ++fetched;
    }
    (took <= kAuctionDeadline ? on_time : late)++;
  }

  std::printf("\n%d auctions, %lld candidates fetched\n", kAuctions,
              (long long)fetched);
  std::printf("auction batch latency: %s\n",
              batch_latency.Summary(1000.0, "us").c_str());
  std::printf("on-time: %d   late (revenue lost): %d\n", on_time, late);
  std::printf("\nNote the tail: large batches incast the client — the paper's\n"
              "Ads deployment sees 99.9p batch latency near 5ms for the same\n"
              "reason (§7.1), while the median stays tens of microseconds.\n");
  return 0;
}
