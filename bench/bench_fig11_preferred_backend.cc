// Figure 11: preferred-backend selection benefits under server load.
//
// Paper setup (§7.2.1): a 3-backend R=3.2 cell using 2xR; clients GET the
// same 4KB KV pair; one backend is put under ~95Gbps of competing NIC
// demand from an antagonist. Reported: median and p99 latency, normalized
// to the unloaded case, for R=3.2 and R=1.
//
// Expected shape: R=3.2 is nearly flat under load (first-responder
// preference + quorum ignore the slow replica); R=1 is obliged to use the
// overloaded backend, so both median and tail inflate.
#include "bench_util.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

Histogram RunScenario(ReplicationMode mode, bool external_load) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = mode;
  o.transport = TransportKind::kSoftNic;
  o.backend.initial_buckets = 64;
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = LookupStrategy::kTwoR;  // paper: "configured to use 2xR"
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());

  // One 4KB key; find one whose replica set covers all three backends
  // (with 3 shards and R=3, every key does).
  const std::string key = "fig11-key";
  (void)RunOp(sim, client->Set(key, Bytes(4096, std::byte{7})));
  (void)RunOp(sim, client->Get(key));  // warm connections

  if (external_load) {
    // ~95Gbps of competing demand through one backend's NIC (both
    // directions, as a co-located antagonist would generate). The shallow
    // backlog cap approximates the per-flow fairness/pacing of production
    // datacenter NICs: victim traffic queues behind a bounded share of the
    // antagonist, not an unbounded FIFO.
    const uint32_t loaded_shard =
        ReplicaShard(PrimaryShard(HashKey(key), 3), 0, 3);
    cell.fabric().StartAntagonist(cell.backend(loaded_shard).host(), 95.0,
                                  /*tx=*/true, /*rx=*/true,
                                  /*max_backlog=*/sim::Microseconds(15));
    sim.RunUntil(sim.now() + sim::Milliseconds(2));
  }

  return MeasureGets(sim, client, key, 2000);
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm::bench;
  JsonReport report(argc, argv, "fig11_preferred_backend");
  if (!report.enabled()) {
    Banner("Figure 11: preferred backend selection under external load\n"
           "(3-backend cell, 2xR, 4KB value, ~95Gbps antagonist on one backend;\n"
           " normalized to the matching no-load configuration)");
  }

  struct Config {
    const char* name;
    const char* tag;
    cm::cliquemap::ReplicationMode mode;
    bool load;
  };
  const Config configs[] = {
      {"R=3.2 no external load", "r32.unloaded",
       cm::cliquemap::ReplicationMode::kR32, false},
      {"R=3.2 with external load", "r32.loaded",
       cm::cliquemap::ReplicationMode::kR32, true},
      {"R=1   no external load", "r1.unloaded",
       cm::cliquemap::ReplicationMode::kR1, false},
      {"R=1   with external load", "r1.loaded",
       cm::cliquemap::ReplicationMode::kR1, true},
  };

  double base_p50[2] = {0, 0};
  double base_p99[2] = {0, 0};
  if (!report.enabled()) {
    std::printf("%-28s %12s %12s %12s %12s\n", "config", "p50(us)", "p99(us)",
                "norm p50", "norm p99");
  }
  for (int i = 0; i < 4; ++i) {
    cm::Histogram h = RunScenario(configs[i].mode, configs[i].load);
    const double p50 = h.Percentile(0.50) / 1000.0;
    const double p99 = h.Percentile(0.99) / 1000.0;
    const int base = i / 2;
    if (!configs[i].load) {
      base_p50[base] = p50;
      base_p99[base] = p99;
    }
    report.AddScalar(std::string(configs[i].tag) + ".p50_us", p50);
    report.AddScalar(std::string(configs[i].tag) + ".p99_us", p99);
    report.AddScalar(std::string(configs[i].tag) + ".norm_p50",
                     p50 / base_p50[base]);
    report.AddScalar(std::string(configs[i].tag) + ".norm_p99",
                     p99 / base_p99[base]);
    if (report.enabled()) continue;
    std::printf("%-28s %12.1f %12.1f %12.2f %12.2f\n", configs[i].name, p50,
                p99, p50 / base_p50[base], p99 / base_p99[base]);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: R=3.2 normalized latencies stay ~1.0x under load;\n"
      "R=1 inflates at both median and tail.\n");
  return 0;
}
