// Figure 7: CliqueMap-client and software-NIC CPU per op under three
// lookup strategies: 2xR, SCAR, and two-sided messaging (MSG).
//
// Expected shape (§6.3): SCAR halves the NIC work of 2xR (one op instead
// of two); MSG — waking a server application thread per lookup — costs far
// more than either one-sided strategy.
#include "bench_util.h"

#include "rma/softnic.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

struct CpuCosts {
  double client_ns_per_op;
  double nic_ns_per_op;  // initiator + target software-NIC engine time
};

CpuCosts Measure(LookupStrategy strategy, int ops) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 1;
  o.mode = ReplicationMode::kR1;
  o.transport = TransportKind::kSoftNic;
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = strategy;
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());
  (void)RunOp(sim, client->Set("k", Bytes(64, std::byte{1})));
  (void)RunOp(sim, client->Get("k"));  // warm

  const auto& stats = cell.softnic()->stats();
  const int64_t client_cpu0 =
      cell.fabric().host(client->host()).cpu().total_busy_ns();
  const int64_t nic0 = stats.initiator_nic_ns + stats.target_nic_ns;
  for (int i = 0; i < ops; ++i) {
    auto r = RunOp(sim, client->Get("k"));
    if (!r.ok()) std::abort();
  }
  const int64_t client_cpu1 =
      cell.fabric().host(client->host()).cpu().total_busy_ns();
  const int64_t nic1 = stats.initiator_nic_ns + stats.target_nic_ns;
  return CpuCosts{double(client_cpu1 - client_cpu0) / ops,
                  double(nic1 - nic0) / ops};
}

// MSG: a two-sided message over the software NIC that wakes a server
// application thread to perform the lookup (HERD-style).
CpuCosts MeasureMsg(int ops) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  rma::RmaNetwork rma_network;
  rma::SoftNicTransport nic(fabric, rma_network);
  net::HostId client = fabric.AddHost(net::HostConfig{});
  net::HostId server = fabric.AddHost(net::HostConfig{});

  Bytes value(64, std::byte{1});
  auto handler = [&](ByteSpan) -> sim::Task<StatusOr<Bytes>> {
    co_return value;  // the lookup itself: a handful of memory accesses
  };

  const int64_t client_cpu0 = fabric.host(client).cpu().total_busy_ns();
  const int64_t server_cpu0 = fabric.host(server).cpu().total_busy_ns();
  const int64_t nic0 = nic.stats().initiator_nic_ns + nic.stats().target_nic_ns;
  for (int i = 0; i < ops; ++i) {
    auto r = RunOp(sim, [](sim::Simulator& sim, net::Fabric& fabric,
                           rma::SoftNicTransport& nic, net::HostId client,
                           net::HostId server,
                           auto& handler) -> sim::Task<StatusOr<Bytes>> {
      // Two-sided on the client too: the caller thread blocks and must be
      // woken to consume the response.
      co_await fabric.host(client).cpu().Run(sim::Nanoseconds(600));
      auto r = co_await nic.Message(client, server, cm::ToBytes("get k"),
                                    handler, sim::Microseconds(1));
      co_await fabric.host(client).cpu().Run(sim::Microseconds(1));
      co_return r;
    }(sim, fabric, nic, client, server, handler));
    if (!r.ok()) std::abort();
  }
  const int64_t client_cpu =
      fabric.host(client).cpu().total_busy_ns() - client_cpu0;
  const int64_t server_cpu =
      fabric.host(server).cpu().total_busy_ns() - server_cpu0;
  const int64_t nic1 = nic.stats().initiator_nic_ns + nic.stats().target_nic_ns;
  // Application-thread wake cost counts against the "Pony Express" bar in
  // the paper's accounting of server-side lookup cost.
  return CpuCosts{double(client_cpu) / ops,
                  double(nic1 - nic0 + server_cpu) / ops};
}

}  // namespace
}  // namespace cm::bench

int main() {
  using namespace cm::bench;
  using cm::cliquemap::LookupStrategy;
  Banner("Figure 7: CPU-ns/op by lookup strategy (client vs software NIC)");

  const int kOps = 3000;
  CpuCosts two_r = Measure(LookupStrategy::kTwoR, kOps);
  CpuCosts scar = Measure(LookupStrategy::kScar, kOps);
  CpuCosts msg = MeasureMsg(kOps);

  std::printf("%-8s %22s %26s\n", "strategy", "CliqueMap client (ns/op)",
              "Pony Express + server (ns/op)");
  std::printf("%-8s %22.0f %26.0f\n", "2xR", two_r.client_ns_per_op,
              two_r.nic_ns_per_op);
  std::printf("%-8s %22.0f %26.0f\n", "SCAR", scar.client_ns_per_op,
              scar.nic_ns_per_op);
  std::printf("%-8s %22.0f %26.0f\n", "MSG", msg.client_ns_per_op,
              msg.nic_ns_per_op);
  std::printf(
      "\nTakeaway check: SCAR < 2xR on both client and NIC cost (half the\n"
      "ops per GET); MSG's thread wake dwarfs SCAR's in-NIC bucket scan.\n");
  return 0;
}
