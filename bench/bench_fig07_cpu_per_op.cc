// Figure 7: CliqueMap-client and software-NIC CPU per op under three
// lookup strategies: 2xR, SCAR, and two-sided messaging (MSG).
//
// Expected shape (§6.3): SCAR halves the NIC work of 2xR (one op instead
// of two); MSG — waking a server application thread per lookup — costs far
// more than either one-sided strategy.
//
// All per-layer attribution comes from the metrics registry: a snapshot is
// taken around the measured loop and the delta is broken down into client
// issue/validate CPU (cm.client.*_cpu_ns), software-NIC engine time
// (cm.rma.*_nic_ns), and server host CPU (cm.host.cpu_busy_ns). With
// `--json` the bench emits those components as a cm.bench.v1 document.
#include "bench_util.h"

#include "rma/softnic.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

struct CpuCosts {
  double client_ns_per_op = 0;  // whole client-host CPU
  double nic_ns_per_op = 0;     // initiator + target software-NIC engine time
  // Registry-attributed breakdown (ns/op) of where the cycles went.
  double issue_ns_per_op = 0;     // client library: issuing RMA ops
  double validate_ns_per_op = 0;  // client library: hit-condition checks
  double server_ns_per_op = 0;    // server application CPU (MSG only)
  metrics::Snapshot delta;        // the full measured-section delta
};

// Delta of the (gauge) host-CPU busy time between two snapshots.
int64_t HostBusyDelta(const metrics::Snapshot& before,
                      const metrics::Snapshot& after, net::HostId host) {
  const std::string name = metrics::RenderName(
      "cm.host.cpu_busy_ns", {{"host", std::to_string(host)}});
  return after.value(name) - before.value(name);
}

CpuCosts Measure(LookupStrategy strategy, int ops) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 1;
  o.mode = ReplicationMode::kR1;
  o.transport = TransportKind::kSoftNic;
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = strategy;
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());
  (void)RunOp(sim, client->Set("k", Bytes(64, std::byte{1})));
  (void)RunOp(sim, client->Get("k"));  // warm

  const metrics::Snapshot before = cell.metrics().TakeSnapshot();
  for (int i = 0; i < ops; ++i) {
    auto r = RunOp(sim, client->Get("k"));
    if (!r.ok()) std::abort();
  }
  const metrics::Snapshot after = cell.metrics().TakeSnapshot();
  metrics::Snapshot d = after.DeltaFrom(before);

  CpuCosts c;
  c.client_ns_per_op =
      double(HostBusyDelta(before, after, client->host())) / ops;
  c.nic_ns_per_op = double(d.SumPrefix("cm.rma.initiator_nic_ns") +
                           d.SumPrefix("cm.rma.target_nic_ns")) /
                    ops;
  c.issue_ns_per_op = double(d.SumPrefix("cm.client.issue_cpu_ns")) / ops;
  c.validate_ns_per_op =
      double(d.SumPrefix("cm.client.validate_cpu_ns")) / ops;
  c.server_ns_per_op =
      double(HostBusyDelta(before, after, cell.backend(0).host())) / ops;
  c.delta = std::move(d);
  return c;
}

// MSG: a two-sided message over the software NIC that wakes a server
// application thread to perform the lookup (HERD-style).
CpuCosts MeasureMsg(int ops) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  rma::RmaNetwork rma_network;
  rma::SoftNicTransport nic(fabric, rma_network);
  net::HostId client = fabric.AddHost(net::HostConfig{});
  net::HostId server = fabric.AddHost(net::HostConfig{});

  Bytes value(64, std::byte{1});
  auto handler = [&](ByteSpan) -> sim::Task<StatusOr<Bytes>> {
    co_return value;  // the lookup itself: a handful of memory accesses
  };

  const metrics::Snapshot before = fabric.metrics().TakeSnapshot();
  for (int i = 0; i < ops; ++i) {
    auto r = RunOp(sim, [](sim::Simulator& sim, net::Fabric& fabric,
                           rma::SoftNicTransport& nic, net::HostId client,
                           net::HostId server,
                           auto& handler) -> sim::Task<StatusOr<Bytes>> {
      // Two-sided on the client too: the caller thread blocks and must be
      // woken to consume the response.
      co_await fabric.host(client).cpu().Run(sim::Nanoseconds(600));
      auto r = co_await nic.Message(client, server, cm::ToBytes("get k"),
                                    handler, sim::Microseconds(1));
      co_await fabric.host(client).cpu().Run(sim::Microseconds(1));
      co_return r;
    }(sim, fabric, nic, client, server, handler));
    if (!r.ok()) std::abort();
  }
  const metrics::Snapshot after = fabric.metrics().TakeSnapshot();
  metrics::Snapshot d = after.DeltaFrom(before);

  CpuCosts c;
  c.client_ns_per_op = double(HostBusyDelta(before, after, client)) / ops;
  c.server_ns_per_op = double(HostBusyDelta(before, after, server)) / ops;
  // Application-thread wake cost counts against the "Pony Express" bar in
  // the paper's accounting of server-side lookup cost.
  c.nic_ns_per_op = double(d.SumPrefix("cm.rma.initiator_nic_ns") +
                           d.SumPrefix("cm.rma.target_nic_ns")) /
                        ops +
                    c.server_ns_per_op;
  c.delta = std::move(d);
  return c;
}

void AddStrategy(JsonReport& report, const char* prefix, const CpuCosts& c) {
  report.AddScalar(std::string(prefix) + ".client_ns_per_op",
                   c.client_ns_per_op);
  report.AddScalar(std::string(prefix) + ".nic_ns_per_op", c.nic_ns_per_op);
  report.AddScalar(std::string(prefix) + ".issue_ns_per_op",
                   c.issue_ns_per_op);
  report.AddScalar(std::string(prefix) + ".validate_ns_per_op",
                   c.validate_ns_per_op);
  report.AddScalar(std::string(prefix) + ".server_ns_per_op",
                   c.server_ns_per_op);
  report.AddSnapshot(prefix, c.delta);
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm::bench;
  using cm::cliquemap::LookupStrategy;
  JsonReport report(argc, argv, "fig07_cpu_per_op");

  const int kOps = 3000;
  CpuCosts two_r = Measure(LookupStrategy::kTwoR, kOps);
  CpuCosts scar = Measure(LookupStrategy::kScar, kOps);
  CpuCosts msg = MeasureMsg(kOps);

  if (report.enabled()) {
    AddStrategy(report, "2xr", two_r);
    AddStrategy(report, "scar", scar);
    AddStrategy(report, "msg", msg);
    report.Emit();
    return 0;
  }

  Banner("Figure 7: CPU-ns/op by lookup strategy (client vs software NIC)");
  std::printf("%-8s %22s %26s\n", "strategy", "CliqueMap client (ns/op)",
              "Pony Express + server (ns/op)");
  std::printf("%-8s %22.0f %26.0f\n", "2xR", two_r.client_ns_per_op,
              two_r.nic_ns_per_op);
  std::printf("%-8s %22.0f %26.0f\n", "SCAR", scar.client_ns_per_op,
              scar.nic_ns_per_op);
  std::printf("%-8s %22.0f %26.0f\n", "MSG", msg.client_ns_per_op,
              msg.nic_ns_per_op);
  std::printf("\nPer-layer attribution (registry snapshot deltas, ns/op):\n");
  std::printf("%-8s %10s %10s %10s\n", "strategy", "issue", "validate",
              "server");
  std::printf("%-8s %10.0f %10.0f %10.0f\n", "2xR", two_r.issue_ns_per_op,
              two_r.validate_ns_per_op, two_r.server_ns_per_op);
  std::printf("%-8s %10.0f %10.0f %10.0f\n", "SCAR", scar.issue_ns_per_op,
              scar.validate_ns_per_op, scar.server_ns_per_op);
  std::printf("%-8s %10.0f %10.0f %10.0f\n", "MSG", msg.issue_ns_per_op,
              msg.validate_ns_per_op, msg.server_ns_per_op);
  std::printf(
      "\nTakeaway check: SCAR < 2xR on both client and NIC cost (half the\n"
      "ops per GET); MSG's thread wake dwarfs SCAR's in-NIC bucket scan.\n");
  return 0;
}
