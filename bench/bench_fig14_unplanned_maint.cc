// Figure 14: unplanned maintenance (crash) and en-masse repairs — driven
// end-to-end by the self-healing control plane.
//
// §7.2.3: a backend is forcibly crashed at a known time. Unlike the paper's
// operator-timeline rendition (and this bench's earlier revision, which
// called CrashAndRestart by hand), nobody here touches the cell after the
// crash: the CellDoctor's failure detector notices the probe misses, the
// lease lapses at the ConfigService, the shard is declared dead, and the
// doctor drives the Resharder to build and seed a replacement from the
// cohort. Clients ride through on 2/3 quorums with hedged data fetches and
// slow-replica ejection enabled, so the availability dip stays shallow.
//
// Reported self-healing scalars (perf-gated, see scripts/check.sh):
//   doctor.detect_ms  last good probe -> DEAD verdict
//   doctor.mttr_ms    DEAD verdict -> replacement committed + seeded
//   hedge.*           hedged fetches issued / won, slow-replica ejections
#include "bench_util.h"
#include "cliquemap/doctor.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig14_unplanned_maint");
  if (!report.enabled()) {
    Banner("Figure 14: unplanned crash, self-healing recovery\n"
           "(R=3.2; crash at t=60s; detection, fencing, and replacement\n"
           "are fully automatic — zero operator calls)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 6;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 8 << 20;
  o.backend.data_max_bytes = 64 << 20;
  Cell cell(sim, std::move(o));
  cell.Start();

  // Production-scaled control plane: second-granularity leases/probes (the
  // unit-test doctor runs millisecond-scaled ones for speed).
  DoctorOptions dopt;
  dopt.probe_interval = sim::Milliseconds(500);
  dopt.probe_timeout = sim::Milliseconds(100);
  dopt.suspect_after_misses = 2;
  dopt.dead_after_misses = 5;
  dopt.heartbeat_interval = sim::Seconds(1);
  dopt.lease_duration = sim::Seconds(5);
  dopt.cooldown = sim::Seconds(30);
  CellDoctor doctor(cell, dopt);
  doctor.Start();

  WorkloadProfile profile = WorkloadProfile::Uniform(3000, 1024, 1.0);
  constexpr int kClients = 5;
  auto loaded = std::make_shared<sim::Notification>(sim);
  std::vector<Client*> clients;
  std::vector<std::unique_ptr<LoadDriver>> drivers;
  std::vector<sim::Task<void>> tasks;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    // Gray-failure defense on: hedged quorum fetches + outlier ejection.
    cc.hedge_reads = true;
    cc.eject_slow_replicas = true;
    Client* client = cell.AddClient(cc);
    clients.push_back(client);
    LoadDriver::Options opts;
    opts.qps = 2000;
    opts.duration = sim::Seconds(240);
    opts.window = sim::Seconds(10);
    opts.seed = uint64_t(c + 1);
    drivers.push_back(std::make_unique<LoadDriver>(*client, profile, opts));
    tasks.push_back([](Client* client, LoadDriver* d, bool preload,
                       std::shared_ptr<sim::Notification> loaded) -> sim::Task<void> {
      (void)co_await client->Connect();
      if (preload) {
        Status s = co_await d->Preload();
        if (!s.ok()) std::printf("preload: %s\n", s.ToString().c_str());
        loaded->Notify();
      } else {
        co_await loaded->Wait();
      }
      co_await d->Run();
    }(client, drivers.back().get(), c == 0, loaded));
  }
  // Crash at 60s — and that is the last operator action of the run.
  tasks.push_back([](sim::Simulator& sim, Cell* cell) -> sim::Task<void> {
    co_await sim.Delay(sim::Seconds(60));
    cell->CrashShard(0);
  }(sim, &cell));

  auto rpc_series = std::make_shared<std::vector<int64_t>>();
  tasks.push_back([](sim::Simulator& sim, Cell* cell,
                     std::shared_ptr<std::vector<int64_t>> out) -> sim::Task<void> {
    for (int w = 0; w < 24; ++w) {
      co_await sim.Delay(sim::Seconds(10));
      out->push_back(cell->TotalRpcBytes());
    }
  }(sim, &cell, rpc_series));

  RunAll(sim, std::move(tasks));
  doctor.Stop();

  if (!report.enabled()) {
    std::printf("%7s %9s %9s %9s %9s %9s %14s\n", "t(s)", "GET/s", "p50_us",
                "p99_us", "p999_us", "errors", "RPC_bytes/s");
  }
  int64_t prev_bytes = 0;
  size_t max_windows = 0;
  for (const auto& d : drivers) max_windows = std::max(max_windows, d->windows().size());
  std::vector<double> goodput(max_windows, 0.0);
  for (size_t w = 0; w < max_windows; ++w) {
    Histogram get_ns;
    int64_t gets = 0, errors = 0, misses = 0;
    for (const auto& d : drivers) {
      if (w >= d->windows().size()) continue;
      get_ns.Merge(d->windows()[w].get_ns);
      gets += d->windows()[w].gets;
      errors += d->windows()[w].get_errors;
      misses += d->windows()[w].misses;
    }
    goodput[w] = double(gets - errors) / 10.0;
    int64_t bytes = w < rpc_series->size() ? (*rpc_series)[w] : prev_bytes;
    const std::string tag = "t" + std::to_string(w * 10);
    report.AddScalar(tag + ".get_per_sec", double(gets) / 10.0);
    report.AddScalar(tag + ".p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".p999_us", get_ns.Percentile(0.999) / 1000.0);
    report.AddScalar(tag + ".errors", double(errors + misses));
    report.AddScalar(tag + ".rpc_bytes_per_sec",
                     double(bytes - prev_bytes) / 10.0);
    if (!report.enabled()) {
      const char* note = "";
      if (w == 6) note = "  <- crash (doctor takes it from here)";
      std::printf("%7zu %9.0f %9.1f %9.1f %9.1f %9lld %14.0f%s\n", w * 10,
                  double(gets) / 10.0, get_ns.Percentile(0.50) / 1000.0,
                  get_ns.Percentile(0.99) / 1000.0,
                  get_ns.Percentile(0.999) / 1000.0,
                  static_cast<long long>(errors + misses),
                  double(bytes - prev_bytes) / 10.0, note);
    }
    prev_bytes = bytes;
  }

  // Self-healing scalars: detection latency and MTTR straight from the
  // doctor's recovery records.
  const auto& recs = doctor.recoveries();
  double detect_ms = 0.0, mttr_ms = 0.0;
  int recovered = 0;
  for (const auto& r : recs) {
    if (!r.ok) continue;
    ++recovered;
    detect_ms = double(r.detected_at - r.last_ok) / 1e6;
    mttr_ms = double(r.converged_at - r.detected_at) / 1e6;
  }
  report.AddScalar("doctor.detect_ms", detect_ms);
  report.AddScalar("doctor.mttr_ms", mttr_ms);
  report.AddScalar("doctor.recoveries", double(recovered));
  report.AddScalar("doctor.dead_transitions",
                   double(doctor.stats().dead_transitions));

  // Availability dip: deepest degraded-window goodput against the pre-crash
  // median (windows 1..5; window 0 is warm-up). 0 = no visible dip.
  std::vector<double> pre(goodput.begin() + 1,
                          goodput.begin() + std::min<size_t>(6, goodput.size()));
  std::sort(pre.begin(), pre.end());
  const double pre_median = pre.empty() ? 0.0 : pre[pre.size() / 2];
  double min_after = pre_median;
  for (size_t w = 6; w < goodput.size(); ++w) {
    min_after = std::min(min_after, goodput[w]);
  }
  const double dip_frac =
      pre_median > 0.0 ? std::max(0.0, 1.0 - min_after / pre_median) : 0.0;
  report.AddScalar("availability.dip_frac", dip_frac);

  // Gray-failure defense + fault/retry counters.
  int64_t retries = 0, op_timeouts = 0, backoffs = 0, backoff_ns = 0;
  int64_t torn = 0, inquorate = 0, budget = 0;
  int64_t hedged = 0, hedge_wins = 0, ejections = 0;
  for (const Client* c : clients) {
    const ClientStats& s = c->stats();
    retries += s.retries;
    op_timeouts += s.op_timeouts;
    backoffs += s.backoff_events;
    backoff_ns += s.backoff_ns.sum();
    torn += s.torn_reads;
    inquorate += s.inquorate;
    budget += s.budget_exhausted;
    hedged += s.hedged_reads;
    hedge_wins += s.hedge_wins;
    ejections += s.slow_ejections;
  }
  int64_t shed = 0;
  for (const auto& d : drivers) shed += d->shed();
  const BackendStats bs = cell.AggregateBackendStats();
  report.AddScalar("hedge.reads", double(hedged));
  report.AddScalar("hedge.wins", double(hedge_wins));
  report.AddScalar("hedge.slow_ejections", double(ejections));
  report.AddScalar("workload.shed", double(shed));
  report.AddScalar("client.retries", double(retries));
  report.AddScalar("client.op_timeouts", double(op_timeouts));
  report.AddScalar("client.torn_reads", double(torn));
  report.AddScalar("client.inquorate", double(inquorate));
  report.AddScalar("client.budget_exhausted", double(budget));
  report.AddScalar("client.backoff_events", double(backoffs));
  report.AddScalar("client.backoff_total_ms", double(backoff_ns) / 1e6);
  report.AddScalar("repair.pulls_sent", double(bs.repair_pulls_sent));
  report.AddScalar("repair.pulls_served", double(bs.repair_pulls_served));
  report.AddScalar("repair.pull_failures", double(bs.repair_pull_failures));
  report.AddScalar("repair.repairs_issued", double(bs.repairs_issued));
  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\nSelf-healing: dead_transitions=%lld recoveries=%d "
      "detect=%.0fms mttr=%.0fms dip=%.1f%%\n"
      "Gray-failure defense: hedged_reads=%lld hedge_wins=%lld "
      "slow_ejections=%lld shed=%lld\n",
      static_cast<long long>(doctor.stats().dead_transitions), recovered,
      detect_ms, mttr_ms, dip_frac * 100.0, static_cast<long long>(hedged),
      static_cast<long long>(hedge_wins), static_cast<long long>(ejections),
      static_cast<long long>(shed));
  std::printf(
      "\nFault/retry counters:\n"
      "  client: retries=%lld op_timeouts=%lld torn_reads=%lld "
      "inquorate=%lld budget_exhausted=%lld\n"
      "  client: backoff_events=%lld backoff_total_ms=%.1f\n"
      "  repair: pulls_sent=%lld pulls_served=%lld pull_failures=%lld "
      "repairs_issued=%lld bump_versions=%lld bulk_installed=%lld\n",
      static_cast<long long>(retries), static_cast<long long>(op_timeouts),
      static_cast<long long>(torn), static_cast<long long>(inquorate),
      static_cast<long long>(budget), static_cast<long long>(backoffs),
      double(backoff_ns) / 1e6, static_cast<long long>(bs.repair_pulls_sent),
      static_cast<long long>(bs.repair_pulls_served),
      static_cast<long long>(bs.repair_pull_failures),
      static_cast<long long>(bs.repairs_issued),
      static_cast<long long>(bs.bump_versions),
      static_cast<long long>(bs.bulk_installed));
  std::printf(
      "\nTakeaway check: the crash is detected, fenced, and healed with zero\n"
      "operator calls; a repair-RPC burst follows the DEAD verdict; GETs keep\n"
      "succeeding via the 2/3 quorum while degraded.\n");
  return 0;
}
