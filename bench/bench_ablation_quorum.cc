// Ablation: quorum design choices (§5, §8).
//
//  1. First-responder preference: CliqueMap fetches data from the first
//     replica to answer the index fetch. Compare against a fixed-primary
//     policy (primary/backup flavor) under skewed replica load.
//  2. Quorum read availability: hit rate with 0, 1, and 2 of 3 replicas
//     down (quorum reads mask one failure; two failures -> inquorate).
#include "bench_util.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

// Fixed-primary comparator: an R=1 view of the loaded replica, i.e. what a
// primary-pinned read policy would experience when the primary is slow.
Histogram FixedPrimaryUnderLoad() {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR1;
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = LookupStrategy::kTwoR;
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());
  const std::string key = "quorum-key";
  (void)RunOp(sim, client->Set(key, Bytes(4096, std::byte{1})));
  (void)RunOp(sim, client->Get(key));
  const uint32_t primary = PrimaryShard(HashKey(key), 3);
  cell.fabric().StartAntagonist(cell.backend(primary).host(), 95.0, true,
                                true, sim::Microseconds(15));
  sim.RunUntil(sim.now() + sim::Milliseconds(2));
  return MeasureGets(sim, client, key, 1000);
}

Histogram PreferredUnderLoad() {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = LookupStrategy::kTwoR;
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());
  const std::string key = "quorum-key";
  (void)RunOp(sim, client->Set(key, Bytes(4096, std::byte{1})));
  (void)RunOp(sim, client->Get(key));
  const uint32_t primary = PrimaryShard(HashKey(key), 3);
  cell.fabric().StartAntagonist(cell.backend(primary).host(), 95.0, true,
                                true, sim::Microseconds(15));
  sim.RunUntil(sim.now() + sim::Milliseconds(2));
  return MeasureGets(sim, client, key, 1000);
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  JsonReport report(argc, argv, "ablation_quorum");
  if (!report.enabled()) {
    Banner("Ablation: client-side quoruming design choices");
    std::printf("Part 1: data-fetch policy with a slow primary (4KB, 2xR)\n");
  }
  Histogram fixed = FixedPrimaryUnderLoad();
  Histogram preferred = PreferredUnderLoad();
  report.AddScalar("fixed_primary.p50_us", fixed.Percentile(0.5) / 1000.0);
  report.AddScalar("fixed_primary.p99_us", fixed.Percentile(0.99) / 1000.0);
  report.AddScalar("first_responder.p50_us",
                   preferred.Percentile(0.5) / 1000.0);
  report.AddScalar("first_responder.p99_us",
                   preferred.Percentile(0.99) / 1000.0);
  if (!report.enabled()) {
    std::printf("  %-28s p50=%8.1fus p99=%8.1fus\n",
                "fixed primary (pinned)", fixed.Percentile(0.5) / 1000.0,
                fixed.Percentile(0.99) / 1000.0);
    std::printf("  %-28s p50=%8.1fus p99=%8.1fus\n",
                "first responder (CliqueMap)",
                preferred.Percentile(0.5) / 1000.0,
                preferred.Percentile(0.99) / 1000.0);
    std::printf("\nPart 2: read availability vs failed replicas (R=3.2)\n");
  }
  for (int down = 0; down <= 2; ++down) {
    sim::Simulator sim;
    CellOptions o;
    o.num_shards = 3;
    o.mode = ReplicationMode::kR32;
    Cell cell(sim, std::move(o));
    cell.Start();
    Client* client = cell.AddClient();
    (void)RunOp(sim, client->Connect());
    Preload(sim, client, "avail-", 200, 512);
    for (int d = 0; d < down; ++d) cell.CrashShard(uint32_t(d));
    int hits = 0;
    for (int i = 0; i < 200; ++i) {
      auto r = RunOp(sim, client->Get("avail-" + std::to_string(i)));
      if (r.ok()) ++hits;
    }
    report.AddScalar("down" + std::to_string(down) + ".hits", double(hits));
    if (report.enabled()) continue;
    std::printf("  %d replica(s) down: %3d/200 hits\n", down, hits);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: first-responder preference sidesteps the slow\n"
      "primary entirely; quorum reads mask exactly one failure (2/3), and\n"
      "collapse only at two failures — as designed.\n");
  return 0;
}
