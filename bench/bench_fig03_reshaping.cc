// Figure 3: memory reshaping and subsequent DRAM savings.
//
// Timeline reproduced (scaled down from 13 weeks / 512TB to simulated
// "weeks" over a small cell):
//   weeks 1-3:  pre-reshaping — every backend pre-allocates for peak.
//   week  4:    memory reshaping launches — a rolling, non-disruptive
//               backend replacement (Resharder::ReplaceBackend) swaps each
//               slot onto on-demand data regions; records stream to the
//               replacement while both generations answer reads, so the
//               corpus never reloads and clients never see downtime
//               (~10% immediate savings at launch in production).
//   week  8+:   the corpus itself shrinks; weekly rolling replacements let
//               each backend downsize to what the corpus needs — aggregate
//               DRAM drops further without intervention (50% in production).
//
// Both footprints are printed: what the peak-provisioned deployment holds
// (flat) vs. what the reshaped cell actually uses.
#include "bench_util.h"

#include "cliquemap/resharder.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

constexpr uint64_t kPeakBytes = 4ull << 20;  // per-backend "machine" capacity

cliquemap::BackendConfig PeakProvisioned() {
  BackendConfig b;
  b.initial_buckets = 512;
  b.data_max_bytes = kPeakBytes;
  // Pre-reshaping deployments provisioned for peak on startup.
  b.data_initial_bytes = kPeakBytes;
  b.data_grow_factor = 2.0;
  return b;
}

cliquemap::BackendConfig Reshaped() {
  BackendConfig b = PeakProvisioned();
  // Reshaping deployments start small and grow on demand (gentle 1.3x steps
  // so the populated size tracks the corpus rather than overshooting).
  b.data_initial_bytes = 256 << 10;
  b.data_grow_factor = 1.3;
  return b;
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  JsonReport report(argc, argv, "fig03_reshaping");
  if (!report.enabled()) {
    Banner("Figure 3: memory reshaping and DRAM savings over 13 'weeks'\n"
           "(8 backends; corpus grows, reshaping launches week 4 via rolling\n"
           " non-disruptive backend replacement, corpus shrinks from week 8;\n"
           " footprint = index + populated data regions)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 8;
  o.mode = ReplicationMode::kR1;
  o.backend = PeakProvisioned();
  Cell cell(sim, std::move(o));
  cell.Start();
  Resharder resharder(cell);
  Client* client = cell.AddClient();
  (void)RunOp(sim, client->Connect());
  client->StartConfigWatcher();

  cm::Rng rng(7);
  int corpus_size = 0;
  auto set_key = [&](int i, uint32_t bytes) {
    Status s = RunOp(sim, client->Set("corpus-" + std::to_string(i),
                                      Bytes(bytes, std::byte{1})));
    if (!s.ok()) std::fprintf(stderr, "set failed: %s\n", s.ToString().c_str());
  };
  const BackendConfig reshaped = Reshaped();
  // One rolling pass: replace every backend in place. Records stream from
  // the outgoing process to its successor under the dual-version window —
  // no reload from clients or a system of record, no lost writes.
  auto rolling_replace = [&] {
    for (uint32_t s = 0; s < cell.num_shards(); ++s) {
      Status st = RunOp(sim, resharder.ReplaceBackend(s, &reshaped));
      if (!st.ok())
        std::fprintf(stderr, "replace %u: %s\n", s, st.ToString().c_str());
    }
  };

  // The counterfactual column: a peak-provisioned deployment stays pinned at
  // full reservation regardless of corpus size.
  double provisioned_mb = 0;
  if (!report.enabled()) {
    std::printf("%6s %17s %16s %9s %14s %s\n", "week", "provisioned(MB)",
                "memory_used(MB)", "saved", "corpus_keys", "event");
  }
  for (int week = 1; week <= 13; ++week) {
    const char* event = "";
    if (week == 4) {
      event = "<- memory reshaping launched (rolling replace)";
      rolling_replace();
    }
    if (week <= 7) {
      // Corpus grows ~400 keys/week.
      for (int n = 0; n < 400; ++n) {
        set_key(corpus_size++, 2048 + uint32_t(rng.NextBounded(4096)));
      }
    } else {
      // The underlying corpus shrinks (~20%/week): erase + a weekly rolling
      // replacement pass lets each backend downsize independently, still
      // with zero downtime.
      const int target = corpus_size * 4 / 5;
      while (corpus_size > target) {
        (void)RunOp(sim,
                    client->Erase("corpus-" + std::to_string(--corpus_size)));
      }
      if (week == 8) event = "<- corpus begins shrinking";
      rolling_replace();
    }
    sim.RunUntil(sim.now() + sim::Seconds(10));  // one scaled "week"
    const double used_mb = double(cell.TotalMemoryFootprint()) / (1 << 20);
    if (week <= 3) provisioned_mb = std::max(provisioned_mb, used_mb);
    const std::string tag = "week" + std::to_string(week);
    report.AddScalar(tag + ".provisioned_mb", provisioned_mb);
    report.AddScalar(tag + ".used_mb", used_mb);
    report.AddScalar(tag + ".corpus_keys", corpus_size);
    if (report.enabled()) continue;
    std::printf("%6d %17.2f %16.2f %8.1f%% %14d %s\n", week, provisioned_mb,
                used_mb, 100.0 * (1.0 - used_mb / provisioned_mb), corpus_size,
                event);
  }
  const ResharderStats& rs = resharder.stats();
  report.AddScalar("resharder.backends_retired", double(rs.backends_retired));
  report.AddScalar("resharder.records_streamed", double(rs.records_streamed));
  report.AddScalar("resharder.bytes_streamed", double(rs.bytes_streamed));
  report.AddSnapshot("final", cell.metrics().TakeSnapshot());
  if (report.enabled()) {
    report.Emit();
    client->StopConfigWatcher();
    sim.Run();
    return 0;
  }
  std::printf(
      "\nResharder: %lld replacements, %lld records streamed (%.2f MB), "
      "0 reloads.\n",
      static_cast<long long>(rs.backends_retired),
      static_cast<long long>(rs.records_streamed),
      double(rs.bytes_streamed) / (1 << 20));
  std::printf(
      "Takeaway check: a step drop at the reshaping launch (week 4), then\n"
      "further automatic decline as the corpus shrinks — no intervention,\n"
      "no restart-and-reload: replacements are seeded by live record\n"
      "streams under the dual-version window.\n");
  client->StopConfigWatcher();
  sim.Run();
  return 0;
}
