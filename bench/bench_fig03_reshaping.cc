// Figure 3: memory reshaping and subsequent DRAM savings.
//
// Timeline reproduced (scaled down from 13 weeks / 512TB to simulated
// "weeks" over a small cell):
//   weeks 1-3:  pre-reshaping — every backend pre-allocates for peak.
//   week  4:    memory reshaping launches — backends restart with
//               on-demand data regions and grow only as the corpus needs
//               (~10% immediate savings at launch in production).
//   week  8+:   the corpus itself shrinks; without any human intervention
//               aggregate DRAM drops further (50% in production). Data
//               regions downsize via non-disruptive restart (§4.1).
#include "bench_util.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

constexpr uint64_t kPeakBytes = 4ull << 20;  // per-backend "machine" capacity

CellOptions BaseOptions(bool reshaping_enabled) {
  CellOptions o;
  o.num_shards = 8;
  o.mode = ReplicationMode::kR1;
  o.backend.initial_buckets = 512;
  o.backend.data_max_bytes = kPeakBytes;
  // Pre-reshaping deployments provisioned for peak on startup; reshaping
  // deployments start small and grow on demand (gentle 1.3x steps so the
  // populated size tracks the corpus rather than overshooting to peak).
  o.backend.data_initial_bytes = reshaping_enabled ? (256 << 10) : kPeakBytes;
  o.backend.data_grow_factor = reshaping_enabled ? 1.3 : 2.0;
  return o;
}

}  // namespace
}  // namespace cm::bench

int main() {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  Banner("Figure 3: memory reshaping and DRAM savings over 13 'weeks'\n"
         "(8 backends; corpus grows, reshaping launches week 4, corpus\n"
         " shrinks from week 8; footprint = index + populated data regions)");

  sim::Simulator sim;
  std::unique_ptr<Cell> cell =
      std::make_unique<Cell>(sim, BaseOptions(/*reshaping_enabled=*/false));
  cell->Start();
  Client* client = cell->AddClient();
  (void)RunOp(sim, client->Connect());

  cm::Rng rng(7);
  int corpus_size = 0;
  auto set_key = [&](int i, uint32_t bytes) {
    Status s = RunOp(sim, client->Set("corpus-" + std::to_string(i),
                                      Bytes(bytes, std::byte{1})));
    if (!s.ok()) std::fprintf(stderr, "set failed: %s\n", s.ToString().c_str());
  };

  std::printf("%6s %16s %14s %s\n", "week", "memory_used(MB)", "corpus_keys",
              "event");
  for (int week = 1; week <= 13; ++week) {
    const char* event = "";
    if (week == 4) {
      // Reshaping launch: rolling restart into on-demand data regions. The
      // corpus reloads from clients/system-of-record (scaled: re-SET all).
      event = "<- memory reshaping launched";
      cell = std::make_unique<Cell>(sim, BaseOptions(true));
      cell->Start();
      client = cell->AddClient();
      (void)RunOp(sim, client->Connect());
      for (int i = 0; i < corpus_size; ++i) {
        set_key(i, 2048 + uint32_t(rng.NextBounded(4096)));
      }
    }
    if (week <= 7) {
      // Corpus grows ~400 keys/week.
      for (int n = 0; n < 400; ++n) {
        set_key(corpus_size++, 2048 + uint32_t(rng.NextBounded(4096)));
      }
    } else {
      // The underlying corpus shrinks (~20%/week): erase + periodic
      // non-disruptive restarts let each backend downsize independently.
      const int target = corpus_size * 4 / 5;
      while (corpus_size > target) {
        (void)RunOp(sim, client->Erase("corpus-" + std::to_string(--corpus_size)));
      }
      if (week == 8) event = "<- corpus begins shrinking";
      // Rolling non-disruptive restarts (data region downsizing, §4.1).
      for (uint32_t s = 0; s < cell->num_shards(); ++s) {
        (void)RunOp(sim, cell->CrashAndRestart(s, sim::Seconds(1)));
        // Reload this shard's live keys (the paper's R=1 restart relies on
        // repair/spares; with R=1 here the client simply re-populates).
        for (int i = 0; i < corpus_size; ++i) {
          const std::string key = "corpus-" + std::to_string(i);
          if (PrimaryShard(cm::HashKey(key), cell->num_shards()) == s) {
            set_key(i, 2048 + uint32_t(rng.NextBounded(4096)));
          }
        }
      }
    }
    sim.RunUntil(sim.now() + sim::Seconds(10));  // one scaled "week"
    std::printf("%6d %16.2f %14d %s\n", week,
                double(cell->TotalMemoryFootprint()) / (1 << 20), corpus_size,
                event);
  }
  std::printf(
      "\nTakeaway check: a step drop at the reshaping launch (week 4), then\n"
      "further automatic decline as the corpus shrinks — no intervention.\n");
  return 0;
}
