// Live resharding under load: availability and latency through a scripted
// grow -> up-replicate -> replace -> down-replicate -> shrink timeline.
//
// §4.1/§6: reconfigurations ride the dual-version window — both the old and
// the new owners answer reads while records stream, writes land at the new
// owners, and the previous generation is drained and released only after
// commit. The series to eyeball: GET goodput stays flat and the error column
// stays ~0 across every phase boundary, while the cell's footprint steps up
// and back down with the topology.
#include "bench_util.h"

#include "cliquemap/resharder.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "resharding");
  if (!report.enabled()) {
    Banner("Live resharding: elastic timeline under open-loop load\n"
           "(start 3 shards R=1; grow to 5, up-replicate to R=3.2, replace a\n"
           " backend, down-replicate to R=1, shrink to 3 — all online)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR1;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 2 << 20;
  o.backend.data_max_bytes = 32 << 20;
  Cell cell(sim, std::move(o));
  cell.Start();
  Resharder resharder(cell);

  WorkloadProfile profile = WorkloadProfile::Uniform(2000, 512, 0.9);
  constexpr int kClients = 4;
  constexpr int kWindows = 14;
  auto loaded = std::make_shared<sim::Notification>(sim);
  std::vector<Client*> clients;
  std::vector<std::unique_ptr<LoadDriver>> drivers;
  std::vector<sim::Task<void>> tasks;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    cc.config_watch_interval = sim::Milliseconds(10);
    Client* client = cell.AddClient(cc);
    clients.push_back(client);
    LoadDriver::Options opts;
    opts.qps = 1500;
    opts.duration = sim::Seconds(kWindows);
    opts.window = sim::Seconds(1);
    opts.seed = uint64_t(c + 1);
    drivers.push_back(std::make_unique<LoadDriver>(*client, profile, opts));
    tasks.push_back([](Client* client, LoadDriver* d, bool preload,
                       std::shared_ptr<sim::Notification> loaded) -> sim::Task<void> {
      (void)co_await client->Connect();
      client->StartConfigWatcher();
      if (preload) {
        Status s = co_await d->Preload();
        if (!s.ok()) std::printf("preload: %s\n", s.ToString().c_str());
        loaded->Notify();
      } else {
        co_await loaded->Wait();
      }
      co_await d->Run();
    }(client, drivers.back().get(), c == 0, loaded));
  }

  // Scripted control plane: one reconfiguration every two seconds. Each row
  // records the label and when it committed.
  struct Event {
    const char* label;
    sim::Time at = 0;
  };
  auto events = std::make_shared<std::vector<Event>>();
  tasks.push_back([](sim::Simulator& sim, Resharder* r,
                     std::shared_ptr<std::vector<Event>> events) -> sim::Task<void> {
    auto step = [&](const char* label, Status s) {
      if (!s.ok()) std::printf("%s failed: %s\n", label, s.ToString().c_str());
      events->push_back({label, sim.now()});
    };
    co_await sim.Delay(sim::Seconds(2));
    step("grow 3->5", co_await r->Resize(5));
    co_await sim.Delay(sim::Seconds(2));
    step("up-replicate R=1->R=3.2", co_await r->SetReplication(ReplicationMode::kR32));
    co_await sim.Delay(sim::Seconds(2));
    step("replace backend 1", co_await r->ReplaceBackend(1));
    co_await sim.Delay(sim::Seconds(2));
    step("down-replicate R=3.2->R=1", co_await r->SetReplication(ReplicationMode::kR1));
    co_await sim.Delay(sim::Seconds(2));
    step("shrink 5->3", co_await r->Resize(3));
  }(sim, &resharder, events));

  // Footprint sampler: one reading mid-window, so event windows show the
  // post-commit footprint rather than whatever the run ended at.
  auto mem_series = std::make_shared<std::vector<uint64_t>>();
  tasks.push_back([](sim::Simulator& sim, Cell* cell,
                     std::shared_ptr<std::vector<uint64_t>> out) -> sim::Task<void> {
    co_await sim.Delay(sim::Milliseconds(900));
    for (int w = 0; w < kWindows; ++w) {
      out->push_back(cell->TotalMemoryFootprint());
      co_await sim.Delay(sim::Seconds(1));
    }
  }(sim, &cell, mem_series));

  RunAll(sim, std::move(tasks));
  for (Client* c : clients) c->StopConfigWatcher();
  sim.Run();

  // Per-window series: all drivers merged (Histogram::Merge), with the
  // control-plane step that landed inside each window called out.
  if (!report.enabled()) {
    std::printf("%6s %9s %8s %9s %9s %8s %11s  %s\n", "t(s)", "GET/s",
                "avail", "hit_rate", "p50_us", "p99_us", "mem(MB)", "event");
  }
  size_t max_windows = 0;
  for (const auto& d : drivers)
    max_windows = std::max(max_windows, d->windows().size());
  struct PhaseAgg {
    const char* label = "";
    Histogram get_ns;
    int64_t gets = 0, errors = 0, misses = 0;
  };
  std::vector<PhaseAgg> phases;
  phases.emplace_back();
  phases.back().label = "steady R=1 x3";
  for (size_t w = 0; w < max_windows; ++w) {
    Histogram get_ns;
    int64_t gets = 0, errors = 0, misses = 0;
    for (const auto& d : drivers) {
      if (w >= d->windows().size()) continue;
      get_ns.Merge(d->windows()[w].get_ns);
      gets += d->windows()[w].gets;
      errors += d->windows()[w].get_errors;
      misses += d->windows()[w].misses;
    }
    const sim::Time w_start = sim::Time(w) * sim::Seconds(1);
    const sim::Time w_end = w_start + sim::Seconds(1);
    const char* note = "";
    const uint64_t footprint = w < mem_series->size()
                                   ? (*mem_series)[w]
                                   : cell.TotalMemoryFootprint();
    for (const Event& e : *events) {
      if (e.at >= w_start && e.at < w_end) {
        note = e.label;
        phases.emplace_back();
        phases.back().label = e.label;
      }
    }
    PhaseAgg& agg = phases.back();
    agg.get_ns.Merge(get_ns);
    agg.gets += gets;
    agg.errors += errors;
    agg.misses += misses;
    const double served = double(std::max<int64_t>(gets, 1));
    const std::string tag = "t" + std::to_string(w);
    report.AddScalar(tag + ".gets", double(gets));
    report.AddScalar(tag + ".availability", 1.0 - double(errors) / served);
    report.AddScalar(tag + ".hit_rate", 1.0 - double(misses) / served);
    report.AddScalar(tag + ".p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".mem_mb", double(footprint) / (1 << 20));
    if (report.enabled()) continue;
    std::printf("%6zu %9.0f %8.4f %9.4f %9.1f %8.1f %11.2f  %s\n", w,
                double(gets), 1.0 - double(errors) / served,
                1.0 - double(misses) / served,
                get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0,
                double(footprint) / (1 << 20), note);
  }

  if (!report.enabled()) {
    std::printf(
        "\nPer-phase summary (windows merged per control-plane step):\n");
    std::printf("%-28s %9s %8s %9s %9s %8s\n", "phase", "GETs", "avail",
                "hit_rate", "p50_us", "p99_us");
  }
  for (const PhaseAgg& p : phases) {
    const double served = double(std::max<int64_t>(p.gets, 1));
    if (report.enabled()) {
      const std::string tag = "phase." + std::string(p.label);
      report.AddScalar(tag + ".availability",
                       1.0 - double(p.errors) / served);
      report.AddScalar(tag + ".p99_us", p.get_ns.Percentile(0.99) / 1000.0);
      continue;
    }
    std::printf("%-28s %9lld %8.4f %9.4f %9.1f %8.1f\n", p.label,
                static_cast<long long>(p.gets),
                1.0 - double(p.errors) / served,
                1.0 - double(p.misses) / served,
                p.get_ns.Percentile(0.50) / 1000.0,
                p.get_ns.Percentile(0.99) / 1000.0);
  }

  const ResharderStats& rs = resharder.stats();
  report.AddScalar("resharder.transitions_committed",
                   double(rs.transitions_committed));
  report.AddScalar("resharder.transitions_started",
                   double(rs.transitions_started));
  report.AddScalar("resharder.records_streamed",
                   double(rs.records_streamed));
  report.AddScalar("resharder.batch_retries", double(rs.batch_retries));
  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\nResharder: transitions=%lld/%lld backends_added=%lld retired=%lld\n"
      "  streamed=%lld records (%.2f MB, %lld batches, %lld retries)\n"
      "  repair_passes=%lld entries_dropped_at_gc=%lld\n",
      static_cast<long long>(rs.transitions_committed),
      static_cast<long long>(rs.transitions_started),
      static_cast<long long>(rs.backends_added),
      static_cast<long long>(rs.backends_retired),
      static_cast<long long>(rs.records_streamed),
      double(rs.bytes_streamed) / (1 << 20),
      static_cast<long long>(rs.batches_sent),
      static_cast<long long>(rs.batch_retries),
      static_cast<long long>(rs.repair_passes),
      static_cast<long long>(rs.entries_dropped));
  int64_t prev_window_gets = 0, stale_rejects = 0, refreshes = 0;
  for (const Client* c : clients) {
    prev_window_gets += c->stats().prev_window_gets;
    stale_rejects += c->stats().stale_generation_rejects;
    refreshes += c->stats().config_refreshes;
  }
  std::printf(
      "Clients: prev_window_gets=%lld stale_generation_rejects=%lld "
      "config_refreshes=%lld\n",
      static_cast<long long>(prev_window_gets),
      static_cast<long long>(stale_rejects),
      static_cast<long long>(refreshes));
  std::printf(
      "\nTakeaway check: availability stays ~1.0 and p99 moves only modestly\n"
      "through all five reconfigurations; the footprint column steps with the\n"
      "topology (5 shards > 3; R=3.2 > R=1) and returns to baseline.\n");
  return 0;
}
