// Figure 13: planned maintenance via warm spares under steady GET load.
//
// §7.2.3: an R=3.2 cell under a constant GET rate; at a known time a
// primary backend is notified of a planned restart. It migrates its data
// to a warm spare (visible as an RPC byte surge), exits, restarts, and the
// spare migrates the data back (a second surge). Client-observed latency
// percentiles should be essentially flat throughout ("fewer than 1 op in
// 1000 observes degraded performance").
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig13_planned_maint");
  if (!report.enabled()) {
    Banner("Figure 13: planned maintenance via warm spares\n"
           "(R=3.2 + 1 spare; steady GETs; restart injected at t=60s)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 6;
  o.mode = ReplicationMode::kR32;
  o.num_spares = 1;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 8 << 20;
  o.backend.data_max_bytes = 64 << 20;
  o.restart_duration = sim::Seconds(35);  // 13:53:30 exit -> 13:54:05 return
  Cell cell(sim, std::move(o));
  cell.Start();

  WorkloadProfile profile = WorkloadProfile::Uniform(3000, 1024, 1.0);
  constexpr int kClients = 5;
  auto loaded = std::make_shared<sim::Notification>(sim);
  std::vector<std::unique_ptr<LoadDriver>> drivers;
  std::vector<sim::Task<void>> tasks;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    Client* client = cell.AddClient(cc);
    LoadDriver::Options opts;
    opts.qps = 2000;  // 10K GET/s aggregate (scaled from the paper's 100K)
    opts.duration = sim::Seconds(180);
    opts.window = sim::Seconds(10);
    opts.seed = uint64_t(c + 1);
    drivers.push_back(std::make_unique<LoadDriver>(*client, profile, opts));
    tasks.push_back([](Client* client, LoadDriver* d, bool preload,
                       std::shared_ptr<sim::Notification> loaded) -> sim::Task<void> {
      (void)co_await client->Connect();
      if (preload) {
        Status s = co_await d->Preload();
        if (!s.ok()) std::printf("preload: %s\n", s.ToString().c_str());
        loaded->Notify();
      } else {
        co_await loaded->Wait();
      }
      co_await d->Run();
    }(client, drivers.back().get(), c == 0, loaded));
  }
  // Inject the planned event at t=60s.
  tasks.push_back([](sim::Simulator& sim, Cell* cell) -> sim::Task<void> {
    co_await sim.Delay(sim::Seconds(60));
    Status s = co_await cell->PlannedMaintenance(0);
    if (!s.ok()) std::printf("maintenance failed: %s\n", s.ToString().c_str());
  }(sim, &cell));

  // Sample cumulative RPC bytes per window for the bytes/sec series.
  auto rpc_series = std::make_shared<std::vector<int64_t>>();
  tasks.push_back([](sim::Simulator& sim, Cell* cell,
                     std::shared_ptr<std::vector<int64_t>> out) -> sim::Task<void> {
    for (int w = 0; w < 18; ++w) {
      co_await sim.Delay(sim::Seconds(10));
      out->push_back(cell->TotalRpcBytes());
    }
  }(sim, &cell, rpc_series));

  RunAll(sim, std::move(tasks));

  if (!report.enabled()) {
    std::printf("%7s %9s %9s %9s %9s %14s\n", "t(s)", "GET/s", "p50_us",
                "p99_us", "p999_us", "RPC_bytes/s");
  }
  int64_t prev_bytes = 0;
  size_t max_windows = 0;
  for (const auto& d : drivers) max_windows = std::max(max_windows, d->windows().size());
  for (size_t w = 0; w < max_windows; ++w) {
    Histogram get_ns;
    int64_t gets = 0, errors = 0;
    for (const auto& d : drivers) {
      if (w >= d->windows().size()) continue;
      get_ns.Merge(d->windows()[w].get_ns);
      gets += d->windows()[w].gets;
      errors += d->windows()[w].get_errors;
    }
    int64_t bytes = w < rpc_series->size() ? (*rpc_series)[w] : prev_bytes;
    const std::string tag = "t" + std::to_string(w * 10);
    report.AddScalar(tag + ".get_per_sec", double(gets) / 10.0);
    report.AddScalar(tag + ".p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".p999_us", get_ns.Percentile(0.999) / 1000.0);
    report.AddScalar(tag + ".rpc_bytes_per_sec",
                     double(bytes - prev_bytes) / 10.0);
    report.AddScalar(tag + ".errors", double(errors));
    if (!report.enabled()) {
      std::printf("%7zu %9.0f %9.1f %9.1f %9.1f %14.0f%s%s\n", w * 10,
                  double(gets) / 10.0, get_ns.Percentile(0.50) / 1000.0,
                  get_ns.Percentile(0.99) / 1000.0,
                  get_ns.Percentile(0.999) / 1000.0,
                  double(bytes - prev_bytes) / 10.0,
                  (w == 6) ? "  <- planned restart notified" : "",
                  errors ? "  (errors!)" : "");
    }
    prev_bytes = bytes;
  }
  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: two RPC byte surges (migration out, migration\n"
      "back) around the event; latency percentiles essentially unchanged.\n");
  return 0;
}
