// Figure 9: the Geo (road-traffic prediction) workload over a scaled week.
//
// Geo (§7.1): highly diurnal GET traffic (~3x swing) over compact road
// segment records, mixed with a steady background corpus update rate from
// separate writer jobs. The reproduction target: despite the 3x GET-rate
// variation, tail latency varies minimally.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig09_geo");
  if (!report.enabled()) {
    Banner("Figure 9: Geo workload ('1 week' = 7 x 4s days, scaled rates)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 6;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 1024;
  o.backend.data_initial_bytes = 16 << 20;
  o.backend.data_max_bytes = 256 << 20;
  o.backend.slab.slab_bytes = 2 * 1024 * 1024;
  Cell cell(sim, std::move(o));
  cell.Start();

  WorkloadProfile readers = WorkloadProfile::Geo();
  readers.num_keys = 6000;
  readers.get_fraction = 1.0;  // reader jobs only GET
  WorkloadProfile writers = WorkloadProfile::Geo();
  writers.num_keys = 6000;
  writers.get_fraction = 0.0;  // the model-update job only SETs
  writers.batches = BatchDistribution::Single();

  const sim::Duration kDay = sim::Seconds(4);
  DiurnalRate diurnal(3.0, kDay);  // the 3x daily swing

  std::vector<std::unique_ptr<LoadDriver>> drivers;
  std::vector<sim::Task<void>> tasks;
  // Three diurnal reader jobs.
  for (int c = 0; c < 3; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    Client* client = cell.AddClient(cc);
    LoadDriver::Options opts;
    opts.qps = 400;
    opts.duration = 7 * kDay;
    opts.window = kDay / 4;
    opts.seed = uint64_t(c + 1);
    opts.rate_multiplier = [diurnal](sim::Time t) {
      return diurnal.MultiplierAt(t);
    };
    drivers.push_back(std::make_unique<LoadDriver>(*client, readers, opts));
    tasks.push_back([](Client* client, LoadDriver* d, bool preload) -> sim::Task<void> {
      (void)co_await client->Connect();
      if (preload) (void)co_await d->Preload();
      co_await d->Run();
    }(client, drivers.back().get(), c == 0));
  }
  // One steady background updater (flat rate: the model retrains all day).
  {
    ClientConfig cc;
    cc.client_id = 100;
    Client* client = cell.AddClient(cc);
    LoadDriver::Options opts;
    opts.qps = 250;
    opts.duration = 7 * kDay;
    opts.window = kDay / 4;
    opts.seed = 999;
    drivers.push_back(std::make_unique<LoadDriver>(*client, writers, opts));
    tasks.push_back([](Client* client, LoadDriver* d) -> sim::Task<void> {
      (void)co_await client->Connect();
      co_await d->Run();
    }(client, drivers.back().get()));
  }
  RunAll(sim, std::move(tasks));

  size_t max_windows = 0;
  for (const auto& d : drivers) max_windows = std::max(max_windows, d->windows().size());
  if (!report.enabled()) {
    std::printf("%7s %10s %9s %9s %9s %9s\n", "day", "GET/s", "SET/s",
                "p50_us", "p99_us", "p999_us");
  }
  double min_p999 = 1e18, max_p999 = 0, min_rate = 1e18, max_rate = 0;
  for (size_t w = 0; w + 1 < max_windows; ++w) {  // drop ragged last window
    Histogram get_ns;
    int64_t gets = 0, sets = 0;
    sim::Time start = 0;
    for (const auto& d : drivers) {
      if (w >= d->windows().size()) continue;
      const WindowStats& ws = d->windows()[w];
      get_ns.Merge(ws.get_ns);
      gets += ws.gets;
      sets += ws.sets;
      start = std::max(start, ws.start);
    }
    const double secs = sim::ToSeconds(kDay / 4);
    const double rate = double(gets) / secs;
    const double p999 = get_ns.Percentile(0.999) / 1000.0;
    const std::string tag = "w" + std::to_string(w);
    report.AddScalar(tag + ".get_per_sec", rate);
    report.AddScalar(tag + ".set_per_sec", double(sets) / secs);
    report.AddScalar(tag + ".p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".p999_us", p999);
    if (!report.enabled()) {
      std::printf("%7.2f %10.0f %9.0f %9.1f %9.1f %9.1f\n",
                  sim::ToSeconds(start) / sim::ToSeconds(kDay), rate,
                  double(sets) / secs, get_ns.Percentile(0.50) / 1000.0,
                  get_ns.Percentile(0.99) / 1000.0, p999);
    }
    if (gets > 0) {
      min_rate = std::min(min_rate, rate);
      max_rate = std::max(max_rate, rate);
      min_p999 = std::min(min_p999, p999);
      max_p999 = std::max(max_p999, p999);
    }
  }
  report.AddScalar("get_rate_swing", max_rate / min_rate);
  report.AddScalar("p999_swing", max_p999 / std::max(min_p999, 1e-9));
  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf("\nGET rate swing: %.1fx   p99.9 swing: %.1fx\n",
              max_rate / min_rate, max_p999 / std::max(min_p999, 1e-9));
  std::printf("Takeaway check: ~3x diurnal GET swing, yet 99.9p latency\n"
              "varies minimally; background SET rate steady.\n");
  return 0;
}
