// bench_simcore: simulator-core hot-path throughput.
//
// Unlike the figure benches (which reproduce paper shapes in *simulated*
// time), this bench measures the harness itself in *wall-clock* time: how
// many scheduler events, coroutine spawns, and fabric/RMA payload bytes per
// real second the simulator core sustains. scripts/perf_gate.sh diffs these
// scalars against the committed BENCH_simcore.json baseline so scheduler or
// buffer regressions are caught at check time.
//
//   --selftest   small sizes + ordering assertions, for the `perf` ctest label
//   --json       cm.bench.v1 document on stdout
#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "common/buffer.h"
#include "common/rng.h"
#include "net/fabric.h"
#include "rma/softnic.h"
#include "sim/simulator.h"

namespace cm {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Steady-state timer churn: a working set of self-rescheduling timers with
// pseudo-random offsets, the dominant event pattern of the NIC/CPU busy-until
// models. Offsets are precomputed so the measured loop is scheduler work,
// not RNG work. Each firing validates that virtual time never runs
// backwards.
double TimerEventsPerSec(uint64_t working_set, uint64_t total_events) {
  sim::Simulator sim;
  Rng rng(0x51c0deULL);
  // Mix of near (sub-microsecond) and far (up to ~1ms) offsets so both the
  // calendar's near wheel and its upper levels see traffic.
  std::vector<sim::Duration> offsets(1 << 16);
  for (auto& off : offsets) {
    off = static_cast<sim::Duration>(
        (rng.NextU64() & 1) ? rng.NextBounded(800)
                            : rng.NextBounded(1'000'000));
  }

  struct State {
    sim::Simulator& sim;
    const std::vector<sim::Duration>& offsets;
    size_t cursor = 0;
    uint64_t remaining;
    sim::Time last_t = 0;
    bool ordered = true;
  } state{sim, offsets, 0, total_events};

  struct Churn {
    State* s;
    void operator()() const {
      if (s->sim.now() < s->last_t) s->ordered = false;
      s->last_t = s->sim.now();
      if (s->remaining == 0) return;
      --s->remaining;
      const auto off = s->offsets[s->cursor++ & 0xFFFF];
      s->sim.PostAfter(off, Churn{s});
    }
  };

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < working_set; ++i) {
    sim.PostAt(static_cast<sim::Time>(rng.NextBounded(1'000'000)),
               Churn{&state});
  }
  sim.Run();
  double secs = SecondsSince(start);
  if (!state.ordered) {
    std::fprintf(stderr, "bench_simcore: virtual time ran backwards\n");
    std::abort();
  }
  return static_cast<double>(sim.events_processed()) / secs;
}

// Detached-coroutine churn: Spawn cost plus the ScheduleAt resume fast path.
std::pair<double, double> SpawnsAndResumesPerSec(uint64_t spawns,
                                                 int yields_per_task) {
  sim::Simulator sim;
  uint64_t completed = 0;

  auto actor = [](sim::Simulator& sim, int yields,
                  uint64_t& completed) -> sim::Task<void> {
    for (int i = 0; i < yields; ++i) co_await sim.Yield();
    ++completed;
  };

  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < spawns; ++i) {
    sim.Spawn(actor(sim, yields_per_task, completed));
  }
  sim.Run();
  double secs = SecondsSince(start);
  if (completed != spawns) {
    std::fprintf(stderr, "bench_simcore: %llu of %llu tasks completed\n",
                 static_cast<unsigned long long>(completed),
                 static_cast<unsigned long long>(spawns));
    std::abort();
  }
  return {static_cast<double>(spawns) / secs,
          static_cast<double>(sim.events_processed()) / secs};
}

// End-to-end RMA payload path: back-to-back one-sided reads of a registered
// region through the software NIC. Reports wall-clock payload bytes/sec and
// the number of buffer-layer byte copies each read cost.
std::pair<double, double> FabricBytesPerSec(uint64_t reads,
                                            uint32_t read_bytes) {
  sim::Simulator sim;
  net::Fabric fabric(sim, {});
  net::HostId client = fabric.AddHost({});
  net::HostId server = fabric.AddHost({});

  Bytes backing(read_bytes, std::byte{0x5a});
  rma::VectorSource source(&backing);
  rma::MemoryRegistry registry;
  rma::RegionId region = registry.Register(&source, backing.size());
  rma::RmaNetwork rma_net;
  rma_net.Attach(server, &registry);
  rma::SoftNicTransport transport(fabric, rma_net);

  uint64_t ok = 0;
  int64_t copied_before = BufferStats::bytes_copied();
  auto driver = [](sim::Simulator&, rma::SoftNicTransport& t,
                   net::HostId client, net::HostId server,
                   rma::RegionId region, uint32_t len, uint64_t reads,
                   uint64_t& ok) -> sim::Task<void> {
    for (uint64_t i = 0; i < reads; ++i) {
      auto r = co_await t.Read(client, server, region, 0, len);
      if (r.ok() && r->size() == len) ++ok;
    }
  };

  auto start = std::chrono::steady_clock::now();
  sim.Spawn(driver(sim, transport, client, server, region, read_bytes, reads,
                   ok));
  sim.Run();
  double secs = SecondsSince(start);
  if (ok != reads) {
    std::fprintf(stderr, "bench_simcore: %llu of %llu reads ok\n",
                 static_cast<unsigned long long>(ok),
                 static_cast<unsigned long long>(reads));
    std::abort();
  }
  double copies_per_read =
      static_cast<double>(BufferStats::bytes_copied() - copied_before) /
      (static_cast<double>(reads) * read_bytes);
  return {static_cast<double>(reads) * read_bytes / secs, copies_per_read};
}

// Wall-clock cost of one simulated second of a busy small topology: RMA
// reads under an antagonist plus periodic timers — the chaos-soak profile.
double WallMsPerSimSecond(sim::Duration sim_horizon) {
  sim::Simulator sim;
  net::Fabric fabric(sim, {});
  net::HostId client = fabric.AddHost({});
  net::HostId server = fabric.AddHost({});

  Bytes backing(4096, std::byte{0x7e});
  rma::VectorSource source(&backing);
  rma::MemoryRegistry registry;
  rma::RegionId region = registry.Register(&source, backing.size());
  rma::RmaNetwork rma_net;
  rma_net.Attach(server, &registry);
  rma::SoftNicTransport transport(fabric, rma_net);
  fabric.StartAntagonist(server, 10.0, true, true);

  auto driver = [](sim::Simulator& sim, rma::SoftNicTransport& t,
                   net::HostId client, net::HostId server,
                   rma::RegionId region, sim::Time until) -> sim::Task<void> {
    while (sim.now() < until) {
      (void)co_await t.Read(client, server, region, 0, 4096);
    }
  };

  auto start = std::chrono::steady_clock::now();
  sim.Spawn(driver(sim, transport, client, server, region, sim_horizon));
  sim.RunUntil(sim_horizon);
  double secs = SecondsSince(start);
  return secs * 1e3 /
         (static_cast<double>(sim_horizon) / 1e9);  // wall ms per sim s
}

// Ordering selftest: same-time events must fire in insertion order across a
// time span wide enough to exercise every calendar level plus overflow.
void OrderingSelftest() {
  sim::Simulator sim;
  std::vector<int> fired;
  // Times chosen to straddle 256ns / 64KB / 16MB / 4GB block boundaries.
  const sim::Time times[] = {0,       1,          255,         256,
                             65535,   65536,      1 << 24,     (1 << 24) + 7,
                             1 << 30, 1ll << 32,  (1ll << 32) + 1,
                             1ll << 40};
  int id = 0;
  for (sim::Time t : times) {
    for (int k = 0; k < 3; ++k) {
      sim.PostAt(t, [&fired, id] { fired.push_back(id); });
      ++id;
    }
  }
  sim.Run();
  for (int i = 0; i < id; ++i) {
    if (fired[static_cast<size_t>(i)] != i) {
      std::fprintf(stderr, "bench_simcore: ordering selftest failed at %d\n",
                   i);
      std::abort();
    }
  }
}

}  // namespace
}  // namespace cm

int main(int argc, char** argv) {
  using namespace cm;
  bool selftest = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) selftest = true;
  }
  bench::JsonReport report(argc, argv, "simcore");

  const uint64_t timer_events = selftest ? 20'000 : 4'000'000;
  const uint64_t spawns = selftest ? 5'000 : 400'000;
  const uint64_t reads = selftest ? 2'000 : 100'000;
  const sim::Duration mixed_horizon =
      selftest ? sim::Milliseconds(50) : sim::Seconds(1);

  OrderingSelftest();

  double events_per_sec = TimerEventsPerSec(/*working_set=*/4096,
                                            timer_events);
  auto [spawns_per_sec, resumes_per_sec] =
      SpawnsAndResumesPerSec(spawns, /*yields_per_task=*/8);
  auto [fabric_bytes_per_sec, copies_per_byte] =
      FabricBytesPerSec(reads, /*read_bytes=*/4096);
  double wall_ms_per_sim_s = WallMsPerSimSecond(mixed_horizon);

  if (!report.enabled()) {
    bench::Banner("bench_simcore: simulator-core wall-clock throughput");
    std::printf("timer events/sec        %12.0f\n", events_per_sec);
    std::printf("coroutine spawns/sec    %12.0f\n", spawns_per_sec);
    std::printf("scheduler resumes/sec   %12.0f\n", resumes_per_sec);
    std::printf("fabric payload bytes/s  %12.0f\n", fabric_bytes_per_sec);
    std::printf("buffer copies per byte  %12.3f\n", copies_per_byte);
    std::printf("wall ms per sim second  %12.2f\n", wall_ms_per_sim_s);
    if (selftest) std::printf("selftest: ok\n");
  }
  report.AddScalar("timers.events_per_sec", events_per_sec);
  report.AddScalar("coro.spawns_per_sec", spawns_per_sec);
  report.AddScalar("coro.resumes_per_sec", resumes_per_sec);
  report.AddScalar("fabric.payload_bytes_per_sec", fabric_bytes_per_sec);
  report.AddScalar("fabric.copies_per_byte", copies_per_byte);
  report.AddScalar("mixed.wall_ms_per_sim_s", wall_ms_per_sim_s);
  if (report.enabled()) report.Emit();
  return 0;
}
