// Microbenchmarks (google-benchmark, real wall-clock): the hot primitives
// every simulated op exercises — hashing, checksums, entry codecs, slab
// allocation, eviction policy updates. These bound how fast the simulator
// itself can push ops, and document the real cost of the data structures.
//
// `--json` replaces the console table with one cm.bench.v1 document
// (per-benchmark real/cpu ns-per-iteration scalars), matching every other
// bench binary's machine-readable mode; remaining flags still reach
// google-benchmark (e.g. --benchmark_filter).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "cliquemap/eviction.h"
#include "cliquemap/layout.h"
#include "cliquemap/slab.h"
#include "common/checksum.h"
#include "common/hash.h"
#include "common/rng.h"

namespace {

using namespace cm;
using namespace cm::cliquemap;

void BM_HashKey(benchmark::State& state) {
  std::string key(size_t(state.range(0)), 'k');
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(key));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashKey)->Arg(16)->Arg(64)->Arg(256);

void BM_Crc32c(benchmark::State& state) {
  Bytes data(size_t(state.range(0)), std::byte{0xAB});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeCrc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(65536);

void BM_EncodeDataEntry(benchmark::State& state) {
  const std::string key = "bench-key";
  Bytes value(size_t(state.range(0)), std::byte{1});
  Bytes buf(DataEntryBytes(key.size(), value.size()));
  const Hash128 hash = HashKey(key);
  const VersionNumber version{1, 2, 3};
  for (auto _ : state) {
    EncodeDataEntry(buf, key, value, hash, version);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeDataEntry)->Arg(64)->Arg(4096);

void BM_DecodeDataEntry(benchmark::State& state) {
  const std::string key = "bench-key";
  Bytes value(size_t(state.range(0)), std::byte{1});
  Bytes buf(DataEntryBytes(key.size(), value.size()));
  EncodeDataEntry(buf, key, value, HashKey(key), VersionNumber{1, 2, 3});
  for (auto _ : state) {
    auto view = DecodeDataEntry(buf);
    benchmark::DoNotOptimize(view);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeDataEntry)->Arg(64)->Arg(4096);

void BM_SlabAllocFree(benchmark::State& state) {
  SlabAllocator slab(64 << 20, 64 << 20);
  const auto size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto off = slab.Allocate(size);
    benchmark::DoNotOptimize(off);
    slab.Free(*off, size);
  }
}
BENCHMARK(BM_SlabAllocFree)->Arg(100)->Arg(4000);

void BM_EvictionPolicyTouch(benchmark::State& state) {
  auto policy = MakeEvictionPolicy(
      static_cast<EvictionPolicyKind>(state.range(0)), 10000, 1);
  std::vector<Hash128> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(HashKey("k" + std::to_string(i)));
    policy->OnInsert(keys.back());
  }
  Rng rng(7);
  for (auto _ : state) {
    policy->OnTouch(keys[rng.NextBounded(keys.size())]);
  }
}
BENCHMARK(BM_EvictionPolicyTouch)
    ->Arg(int(EvictionPolicyKind::kLru))
    ->Arg(int(EvictionPolicyKind::kArc))
    ->Arg(int(EvictionPolicyKind::kClock));

void BM_BucketScan(benchmark::State& state) {
  // The SCAR hot loop: scan a 20-way bucket for a key hash.
  constexpr int kWays = 20;
  Bytes bucket(BucketBytes(kWays));
  EncodeBucketHeader(bucket, BucketHeader{1, false});
  for (int w = 0; w < kWays; ++w) {
    IndexEntry e;
    e.keyhash = HashKey("resident-" + std::to_string(w));
    e.version = {1, 1, 1};
    e.pointer = {1, 64, uint64_t(w) * 64};
    EncodeIndexEntry(MutableByteSpan(bucket).subspan(
                         kBucketHeaderSize + size_t(w) * kIndexEntrySize),
                     e);
  }
  const Hash128 want = HashKey("resident-19");  // worst case: last way
  for (auto _ : state) {
    for (int w = 0; w < kWays; ++w) {
      IndexEntry e = DecodeIndexEntry(ByteSpan(bucket).subspan(
          kBucketHeaderSize + size_t(w) * kIndexEntrySize));
      if (e.keyhash == want) {
        benchmark::DoNotOptimize(e);
        break;
      }
    }
  }
}
BENCHMARK(BM_BucketScan);

// Collects per-benchmark timings instead of printing the console table.
class CollectingReporter : public benchmark::BenchmarkReporter {
 public:
  struct Row {
    std::string name;
    double real_ns_per_iter;
    double cpu_ns_per_iter;
    int64_t iterations;
  };

  bool ReportContext(const Context&) override { return true; }
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      rows.push_back(Row{run.benchmark_name(),
                         run.real_accumulated_time * 1e9 / run.iterations,
                         run.cpu_accumulated_time * 1e9 / run.iterations,
                         run.iterations});
    }
  }

  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull our --json flag out before google-benchmark sees (and rejects) it.
  bool json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (!json) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  cm::json::Writer w;
  w.BeginObject();
  w.Key("schema");
  w.String("cm.bench.v1");
  w.Key("bench");
  w.String("micro");
  w.Key("scalars");
  w.BeginObject();
  for (const auto& row : reporter.rows) {
    w.Key(row.name + ".real_ns_per_iter");
    w.Double(row.real_ns_per_iter);
    w.Key(row.name + ".cpu_ns_per_iter");
    w.Double(row.cpu_ns_per_iter);
    w.Key(row.name + ".iterations");
    w.Double(static_cast<double>(row.iterations));
  }
  w.EndObject();
  w.Key("metrics");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}
