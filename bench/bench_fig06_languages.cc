// Figure 6: CliqueMap performance by client language (cpp / java / go / py).
//
// (a) peak GET op rate, (b) CPU-us per op, (c) median latency at a modest
// fixed rate. The paper's setup is 500 clients x 500 backends with 64B
// objects; scaled here to 16 clients x 8 backends — the claim under test is
// the *ordering* and rough magnitude gaps introduced by the subprocess
// pipe: cpp >> java > go >> py for op rate, inverted for CPU and latency.
#include "bench_util.h"

#include "cliquemap/shim.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

struct LangResult {
  double mops_per_sec;
  double cpu_us_per_op;
  double median_latency_us;
};

LangResult Measure(ShimLanguage lang) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 8;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 256;
  Cell cell(sim, std::move(o));
  cell.Start();

  constexpr int kClients = 16;
  constexpr int kKeys = 512;
  std::vector<std::unique_ptr<LanguageShim>> shims;
  std::vector<Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    Client* client = cell.AddClient(cc);
    clients.push_back(client);
    (void)RunOp(sim, client->Connect());
    shims.push_back(std::make_unique<LanguageShim>(client, lang));
  }
  Preload(sim, clients[0], "lang-", kKeys, 64);

  // (a)+(b): closed-loop peak rate — each client issues GETs back-to-back
  // for a fixed window; op rate and client-host CPU per op.
  const sim::Duration kWindow = sim::Milliseconds(50);
  int64_t cpu0 = 0;
  for (Client* c : clients) {
    cpu0 += cell.fabric().host(c->host()).cpu().total_busy_ns();
  }
  auto total_ops = std::make_shared<int64_t>(0);
  std::vector<sim::Task<void>> drivers;
  const sim::Time end_at = sim.now() + kWindow;
  for (int c = 0; c < kClients; ++c) {
    drivers.push_back([](sim::Simulator& sim, LanguageShim* shim, int seed,
                         sim::Time end_at,
                         std::shared_ptr<int64_t> ops) -> sim::Task<void> {
      cm::Rng rng{uint64_t(seed)};
      while (sim.now() < end_at) {
        auto r = co_await shim->Get(
            "lang-" + std::to_string(rng.NextBounded(kKeys)));
        if (r.ok()) ++*ops;
      }
    }(sim, shims[size_t(c)].get(), c, end_at, total_ops));
  }
  RunAll(sim, std::move(drivers));
  int64_t cpu1 = 0;
  for (Client* c : clients) {
    cpu1 += cell.fabric().host(c->host()).cpu().total_busy_ns();
  }

  LangResult result;
  result.mops_per_sec =
      double(*total_ops) / sim::ToSeconds(kWindow) / 1e6;
  result.cpu_us_per_op =
      *total_ops > 0 ? double(cpu1 - cpu0) / double(*total_ops) / 1000.0 : 0;

  // (c): median latency at a low fixed per-client rate (1K GETs/s/client).
  cm::Histogram lat;
  for (int i = 0; i < 300; ++i) {
    sim.RunUntil(sim.now() + sim::Milliseconds(1));
    sim::Time start = sim.now();
    auto r = RunOp(sim, shims[size_t(i) % shims.size()]->Get(
                            "lang-" + std::to_string(i % kKeys)));
    if (r.ok()) lat.Record(sim.now() - start);
  }
  result.median_latency_us = lat.Percentile(0.5) / 1000.0;
  return result;
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm::bench;
  using cm::cliquemap::ShimLanguage;
  using cm::cliquemap::ShimLanguageName;
  JsonReport report(argc, argv, "fig06_languages");
  if (!report.enabled()) {
    Banner("Figure 6: CliqueMap performance by client language\n"
           "(16 clients x 8 backends, 64B objects; (a) peak op rate,\n"
           " (b) client CPU per op, (c) median latency at 1K GETs/s/client)");
    std::printf("%-6s %18s %16s %18s\n", "lang", "op rate (Mops/s)",
                "CPU-us per op", "median latency(us)");
  }
  for (ShimLanguage lang :
       {ShimLanguage::kCpp, ShimLanguage::kJava, ShimLanguage::kGo,
        ShimLanguage::kPython}) {
    LangResult r = Measure(lang);
    const std::string name(ShimLanguageName(lang));
    report.AddScalar(name + ".mops_per_sec", r.mops_per_sec);
    report.AddScalar(name + ".cpu_us_per_op", r.cpu_us_per_op);
    report.AddScalar(name + ".median_latency_us", r.median_latency_us);
    if (report.enabled()) continue;
    std::printf("%-6s %18.3f %16.2f %18.1f\n", name.c_str(), r.mops_per_sec,
                r.cpu_us_per_op, r.median_latency_us);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: cpp leads on op rate by a wide margin; the pipe\n"
      "hops and in-language marshaling invert the order for CPU/op and\n"
      "latency (py worst) — yet all remain competitive with RPC caches.\n");
  return 0;
}
