// Supporting microbenchmark for §1/§2.1/§6.5 claims (google-benchmark):
//
//  * "even an empty RPC often costs >50 CPU-us in framework and transport
//    code across client and server"
//  * an RMA read costs ~2 orders of magnitude less CPU
//  * CliqueMap GETs vs MemcacheG GETs: latency and total CPU per op
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string_view>
#include <vector>

#include "baseline/memcacheg.h"
#include "bench_util.h"
#include "common/json.h"

namespace {

using namespace cm;
using namespace cm::bench;
using namespace cm::cliquemap;

// CPU-us consumed by one empty RPC across client and server.
void BM_EmptyRpcCpu(benchmark::State& state) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  rpc::RpcNetwork network(fabric);
  net::HostId ch = fabric.AddHost(net::HostConfig{});
  net::HostId sh = fabric.AddHost(net::HostConfig{});
  rpc::RpcServer server(network, sh);
  server.RegisterMethod("nop", [](ByteSpan) -> sim::Task<StatusOr<Bytes>> {
    co_return Bytes{};
  });
  rpc::RpcChannel channel(network, ch, sh);

  int64_t ops = 0;
  for (auto _ : state) {
    (void)RunOp(sim, channel.Call("nop", {}, sim::Milliseconds(10)));
    ++ops;
  }
  const double total_cpu_us =
      double(fabric.host(ch).cpu().total_busy_ns() +
             fabric.host(sh).cpu().total_busy_ns()) /
      1000.0;
  state.counters["cpu_us_per_op"] = total_cpu_us / double(ops);
}
BENCHMARK(BM_EmptyRpcCpu)->Iterations(2000);

// NIC-engine ns consumed by one 64B RMA read (no host CPU at all).
void BM_RmaReadCpu(benchmark::State& state) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  rma::RmaNetwork rma_network;
  rma::SoftNicTransport nic(fabric, rma_network);
  net::HostId ch = fabric.AddHost(net::HostConfig{});
  net::HostId sh = fabric.AddHost(net::HostConfig{});
  std::vector<std::byte> memory(4096, std::byte{1});
  rma::VectorSource source(&memory);
  rma::MemoryRegistry registry;
  rma::RegionId region = registry.Register(&source, memory.size());
  rma_network.Attach(sh, &registry);

  int64_t ops = 0;
  for (auto _ : state) {
    (void)RunOp(sim, nic.Read(ch, sh, region, 0, 64));
    ++ops;
  }
  state.counters["nic_ns_per_op"] =
      double(nic.stats().initiator_nic_ns + nic.stats().target_nic_ns) /
      double(ops);
  state.counters["server_host_cpu_ns"] =
      double(fabric.host(sh).cpu().total_busy_ns());
}
BENCHMARK(BM_RmaReadCpu)->Iterations(2000);

// End-to-end 4KB GET latency: CliqueMap (SCAR) vs MemcacheG (full RPC).
void BM_CliqueMapGet(benchmark::State& state) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  Cell cell(sim, std::move(o));
  cell.Start();
  Client* client = cell.AddClient();
  (void)RunOp(sim, client->Connect());
  (void)RunOp(sim, client->Set("k", Bytes(4096, std::byte{1})));
  (void)RunOp(sim, client->Get("k"));

  Histogram lat;
  for (auto _ : state) {
    sim::Time t0 = sim.now();
    (void)RunOp(sim, client->Get("k"));
    lat.Record(sim.now() - t0);
  }
  state.counters["sim_p50_us"] = double(lat.Percentile(0.5)) / 1000.0;
}
BENCHMARK(BM_CliqueMapGet)->Iterations(2000);

void BM_MemcachegGet(benchmark::State& state) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::FabricConfig{});
  rpc::RpcNetwork network(fabric);
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<baseline::MemcachegServer>> servers;
  for (int i = 0; i < 3; ++i) {
    hosts.push_back(fabric.AddHost(net::HostConfig{}));
    servers.push_back(
        std::make_unique<baseline::MemcachegServer>(network, hosts.back()));
  }
  baseline::MemcachegClient client(network, fabric.AddHost(net::HostConfig{}),
                                   hosts);
  (void)RunOp(sim, client.Set("k", Bytes(4096, std::byte{1})));

  Histogram lat;
  for (auto _ : state) {
    sim::Time t0 = sim.now();
    (void)RunOp(sim, client.Get("k"));
    lat.Record(sim.now() - t0);
  }
  state.counters["sim_p50_us"] = double(lat.Percentile(0.5)) / 1000.0;
}
BENCHMARK(BM_MemcachegGet)->Iterations(2000);

// Collects per-benchmark timings and user counters instead of printing the
// console table (same machine-readable mode as every other bench binary).
class CollectingReporter : public benchmark::BenchmarkReporter {
 public:
  struct Row {
    std::string name;
    double real_ns_per_iter;
    std::vector<std::pair<std::string, double>> counters;
  };

  bool ReportContext(const Context&) override { return true; }
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      Row row;
      row.name = run.benchmark_name();
      row.real_ns_per_iter = run.real_accumulated_time * 1e9 / run.iterations;
      for (const auto& [name, counter] : run.counters) {
        row.counters.emplace_back(name, double(counter));
      }
      rows.push_back(std::move(row));
    }
  }

  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull our --json flag out before google-benchmark sees (and rejects) it.
  bool json = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") {
      json = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (!json) {
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  cm::json::Writer w;
  w.BeginObject();
  w.Key("schema");
  w.String("cm.bench.v1");
  w.Key("bench");
  w.String("rpc_vs_rma");
  w.Key("scalars");
  w.BeginObject();
  for (const auto& row : reporter.rows) {
    w.Key(row.name + ".real_ns_per_iter");
    w.Double(row.real_ns_per_iter);
    for (const auto& [name, value] : row.counters) {
      w.Key(row.name + "." + name);
      w.Double(value);
    }
  }
  w.EndObject();
  w.Key("metrics");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return 0;
}
