// Ablation: lookup strategy vs value size — where is the SCAR/2xR
// crossover, and how far behind is the RPC fallback?
//
// Extends Figs 7/12: SCAR wins at small values (one round trip, tiny
// redundant transfer); 2xR wins at large values under R=3.2 (one copy of
// the datum instead of three); RPC trails both until values get so large
// that transfer time dominates everything.
#include "bench_util.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

double MedianGetUs(LookupStrategy strategy, uint32_t value_bytes) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  o.backend.data_initial_bytes = 8 << 20;
  o.backend.data_max_bytes = 64 << 20;
  o.backend.slab.slab_bytes = 512 * 1024;
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = strategy;
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());
  const std::string key = "xover";
  Status s = RunOp(sim, client->Set(key, Bytes(value_bytes, std::byte{5})));
  if (!s.ok()) return -1;
  (void)RunOp(sim, client->Get(key));
  return double(MeasureGets(sim, client, key, 400).Percentile(0.5)) / 1000.0;
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm::bench;
  using cm::cliquemap::LookupStrategy;
  JsonReport report(argc, argv, "ablation_scar");
  if (!report.enabled()) {
    Banner("Ablation: lookup strategy vs value size (R=3.2, median GET us)");
    std::printf("%10s %10s %10s %10s   %s\n", "value", "SCAR", "2xR", "RPC",
                "winner");
  }
  for (uint32_t size : {64u, 512u, 4096u, 16384u, 65536u, 262144u}) {
    const double scar = MedianGetUs(LookupStrategy::kScar, size);
    const double two_r = MedianGetUs(LookupStrategy::kTwoR, size);
    const double rpc = MedianGetUs(LookupStrategy::kRpc, size);
    const std::string tag = "v" + std::to_string(size);
    report.AddScalar(tag + ".scar_p50_us", scar);
    report.AddScalar(tag + ".2xr_p50_us", two_r);
    report.AddScalar(tag + ".rpc_p50_us", rpc);
    if (report.enabled()) continue;
    const char* winner = scar <= two_r && scar <= rpc ? "SCAR"
                         : two_r <= rpc              ? "2xR"
                                                     : "RPC";
    std::printf("%9uB %9.1f %9.1f %9.1f   %s\n", size, scar, two_r, rpc,
                winner);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: SCAR wins while values are small relative to NIC\n"
      "speed; the 3-copy incast hands large values to 2xR (the Fig 12\n"
      "effect); the RPC path trails until transfer time dominates. 'There\n"
      "is no single optimal lookup method' (§7.2.4).\n");
  return 0;
}
