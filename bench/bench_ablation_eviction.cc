// Ablation: eviction policies (§4.2 — "configurable eviction policies:
// LRU, ARC, and others") under a Zipfian workload with capacity pressure.
//
// Measures steady-state hit rate per policy with client Touch feedback
// enabled. Expected: recency-aware policies (LRU/ARC/CLOCK) beat RANDOM on
// a skewed workload; ARC is competitive with LRU and resists scans.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "ablation_eviction");
  if (!report.enabled()) {
    Banner("Ablation: eviction policy vs hit rate\n"
           "(Zipf(0.99) over 4000 keys; data pool holds ~1/4 of the corpus;\n"
           " clients report touches via batched RPC)");
    std::printf("%-8s %12s %14s %14s\n", "policy", "hit rate", "evictions",
                "touches_used");
  }
  for (auto policy : {EvictionPolicyKind::kLru, EvictionPolicyKind::kArc,
                      EvictionPolicyKind::kClock, EvictionPolicyKind::kRandom}) {
    sim::Simulator sim;
    CellOptions o;
    o.num_shards = 4;
    o.mode = ReplicationMode::kR1;
    o.backend.eviction = policy;
    o.backend.initial_buckets = 512;
    // Pool sized to ~1/4 of the 4000-key x 1KB corpus (per replica).
    o.backend.data_initial_bytes = 320 * 1024;
    o.backend.data_max_bytes = 320 * 1024;
    Cell cell(sim, std::move(o));
    cell.Start();
    ClientConfig cc;
    cc.touch_flush_interval = sim::Milliseconds(10);
    Client* client = cell.AddClient(cc);
    (void)RunOp(sim, client->Connect());
    client->StartTouchFlusher();

    constexpr int kKeys = 4000;
    Rng rng(policy == EvictionPolicyKind::kRandom ? 11u : 7u);
    ZipfSampler zipf(kKeys, 0.99);
    // Mixed phase: GET (95%) with SET-on-miss (demand fill), plus churn.
    int64_t hits = 0, lookups = 0;
    for (int i = 0; i < 30000; ++i) {
      const std::string key = "zipf-" + std::to_string(zipf.Sample(rng));
      auto r = RunOp(sim, client->Get(key));
      ++lookups;
      if (r.ok()) {
        ++hits;
      } else {
        // Demand fill on miss (the downstream-storage read the cache is
        // there to avoid).
        (void)RunOp(sim, client->Set(key, Bytes(1024, std::byte{1})));
      }
    }
    client->StopTouchFlusher();
    const BackendStats agg = cell.AggregateBackendStats();
    const char* name = policy == EvictionPolicyKind::kLru     ? "LRU"
                       : policy == EvictionPolicyKind::kArc   ? "ARC"
                       : policy == EvictionPolicyKind::kClock ? "CLOCK"
                                                              : "RANDOM";
    report.AddScalar(std::string(name) + ".hit_rate",
                     double(hits) / double(lookups));
    report.AddScalar(std::string(name) + ".evictions",
                     double(agg.evictions_capacity + agg.evictions_assoc));
    report.AddScalar(std::string(name) + ".touches_ingested",
                     double(agg.touches_ingested));
    report.AddSnapshot(name, cell.metrics().TakeSnapshot());
    if (report.enabled()) continue;
    std::printf("%-8s %11.1f%% %14lld %14lld\n", name,
                100.0 * double(hits) / double(lookups),
                static_cast<long long>(agg.evictions_capacity +
                                       agg.evictions_assoc),
                static_cast<long long>(agg.touches_ingested));
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: recency-aware policies clearly beat RANDOM on the\n"
      "skewed workload; client-side access recording makes recency work\n"
      "despite GETs never touching the backend CPU.\n");
  return 0;
}
