// Figure 12: SCAR vs 2xR under varied client load, large (64KB) values.
//
// §6.3/§7.2.2: with R=3.2, SCAR solicits three full copies of the datum
// (~195KB per op: 3 x 64KB values + 3 x 1KB buckets), transiently incasting
// the client; 2xR transfers only ~67KB (1 value + 3 buckets). With scarce
// client downlink (competing load), SCAR's median lags 2xR despite its
// single-round-trip advantage.
#include "bench_util.h"

namespace cm::bench {
namespace {

using namespace cm::cliquemap;

Histogram RunScenario(LookupStrategy strategy, bool client_load) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 3;
  o.mode = ReplicationMode::kR32;
  o.transport = TransportKind::kSoftNic;
  o.backend.initial_buckets = 64;
  o.backend.data_initial_bytes = 8 << 20;
  o.backend.data_max_bytes = 64 << 20;
  o.backend.slab.slab_bytes = 256 * 1024;  // 64KB values need larger slabs
  Cell cell(sim, std::move(o));
  cell.Start();
  ClientConfig cc;
  cc.strategy = strategy;
  Client* client = cell.AddClient(cc);
  (void)RunOp(sim, client->Connect());

  const std::string key = "fig12-key";
  Status set = RunOp(sim, client->Set(key, Bytes(64 * 1024, std::byte{9})));
  if (!set.ok()) {
    std::fprintf(stderr, "preload failed: %s\n", set.ToString().c_str());
    std::abort();
  }
  (void)RunOp(sim, client->Get(key));  // warm

  if (client_load) {
    // Competing demand on the client's downlink exacerbates the incast.
    cell.fabric().StartAntagonist(client->host(), 40.0, /*tx=*/false,
                                  /*rx=*/true,
                                  /*max_backlog=*/sim::Microseconds(15));
    sim.RunUntil(sim.now() + sim::Milliseconds(2));
  }
  return MeasureGets(sim, client, key, 800);
}

}  // namespace
}  // namespace cm::bench

int main(int argc, char** argv) {
  using namespace cm::bench;
  using cm::cliquemap::LookupStrategy;
  JsonReport report(argc, argv, "fig12_scar_incast");
  if (!report.enabled()) {
    Banner("Figure 12: SCAR vs 2xR with 64KB values (client incast)\n"
           "(R=3.2; SCAR moves ~195KB/op vs ~67KB/op for 2xR)");
    std::printf("%-10s %-20s %12s %12s\n", "strategy", "client load",
                "p50(us)", "p99(us)");
  }
  struct Row {
    const char* name;
    const char* tag;
    LookupStrategy s;
    bool load;
  };
  const Row rows[] = {
      {"2xR", "2xr.unloaded", LookupStrategy::kTwoR, false},
      {"2xR", "2xr.loaded", LookupStrategy::kTwoR, true},
      {"SCAR", "scar.unloaded", LookupStrategy::kScar, false},
      {"SCAR", "scar.loaded", LookupStrategy::kScar, true},
  };
  for (const Row& row : rows) {
    cm::Histogram h = RunScenario(row.s, row.load);
    report.AddScalar(std::string(row.tag) + ".p50_us",
                     h.Percentile(0.5) / 1000.0);
    report.AddScalar(std::string(row.tag) + ".p99_us",
                     h.Percentile(0.99) / 1000.0);
    if (report.enabled()) continue;
    std::printf("%-10s %-20s %12.1f %12.1f\n", row.name,
                row.load ? "with external load" : "no external load",
                h.Percentile(0.5) / 1000.0, h.Percentile(0.99) / 1000.0);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: at 64KB values SCAR's 3-copy incast makes it slower\n"
      "than 2xR, especially under competing client load — redundant fetch is\n"
      "only acceptable when KV sizes are small relative to NIC speed.\n");
  return 0;
}
