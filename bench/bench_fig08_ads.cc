// Figure 8: the Ads serving workload over a (scaled) week.
//
// Ads (§7.1): R=3.2, highly-batched on-demand GETs under auction deadlines,
// GET rate >> SET rate, plus periodic backfill SET bursts. Batch-response
// incast pushes the p99.9 GET tail toward milliseconds while the median
// stays tens of microseconds.
//
// Scale: 7 "days" of 4 simulated seconds each; rates scaled to a small
// cell. The shape under reproduction: diurnal GET rate, flat-ish medians,
// a deep 99.9p tail from batching, SET backfill bursts.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig08_ads");
  if (!report.enabled()) {
    Banner("Figure 8: Ads workload ('1 week' = 7 x 4s days, scaled rates)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 6;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 16 << 20;
  o.backend.data_max_bytes = 256 << 20;
  o.backend.slab.slab_bytes = 2 * 1024 * 1024;
  Cell cell(sim, std::move(o));
  cell.Start();

  WorkloadProfile profile = WorkloadProfile::Ads();
  profile.num_keys = 4000;

  constexpr int kClients = 4;
  const sim::Duration kDay = sim::Seconds(4);
  DiurnalRate diurnal(2.0, kDay);
  std::vector<std::unique_ptr<LoadDriver>> drivers;
  std::vector<sim::Task<void>> tasks;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    Client* client = cell.AddClient(cc);
    LoadDriver::Options opts;
    opts.qps = 300;  // lookup ops (batched) per client
    opts.duration = 7 * kDay;
    opts.window = kDay / 2;
    opts.seed = uint64_t(c + 1);
    opts.rate_multiplier = [diurnal](sim::Time t) {
      return diurnal.MultiplierAt(t);
    };
    drivers.push_back(std::make_unique<LoadDriver>(*client, profile, opts));
    tasks.push_back([](Client* client, LoadDriver* driver,
                       bool preload) -> sim::Task<void> {
      (void)co_await client->Connect();
      if (preload) {
        Status s = co_await driver->Preload();  // the initial backfill
        if (!s.ok()) std::printf("preload: %s\n", s.ToString().c_str());
      }
      co_await driver->Run();
    }(client, drivers.back().get(), c == 0));
  }
  RunAll(sim, std::move(tasks));

  // Merge windows across clients.
  size_t max_windows = 0;
  for (const auto& d : drivers) max_windows = std::max(max_windows, d->windows().size());
  if (!report.enabled()) {
    std::printf("%7s %10s %9s %9s %9s %9s %10s\n", "day", "GET/s", "SET/s",
                "p50_us", "p99_us", "p999_us", "misses");
  }
  for (size_t w = 0; w < max_windows; ++w) {
    Histogram get_ns;
    int64_t gets = 0, sets = 0, misses = 0;
    sim::Time start = 0;
    for (const auto& d : drivers) {
      if (w >= d->windows().size()) continue;
      const WindowStats& ws = d->windows()[w];
      get_ns.Merge(ws.get_ns);
      gets += ws.gets;
      sets += ws.sets;
      misses += ws.misses;
      start = ws.start;
    }
    const double secs = sim::ToSeconds(kDay / 2);
    const std::string tag = "w" + std::to_string(w);
    report.AddScalar(tag + ".get_per_sec", double(gets) / secs);
    report.AddScalar(tag + ".set_per_sec", double(sets) / secs);
    report.AddScalar(tag + ".p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".p999_us", get_ns.Percentile(0.999) / 1000.0);
    report.AddScalar(tag + ".misses", double(misses));
    if (report.enabled()) continue;
    std::printf("%7.2f %10.0f %9.0f %9.1f %9.1f %9.1f %10lld\n",
                sim::ToSeconds(start) / sim::ToSeconds(kDay),
                double(gets) / secs, double(sets) / secs,
                get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0,
                get_ns.Percentile(0.999) / 1000.0,
                static_cast<long long>(misses));
  }
  // Controlled comparison: the same batch sequences through a batched and a
  // batching-disabled client on the same corpus. Gated scalars (both named
  // lower-is-better):
  //   batchcmp.batched_over_naive_p99  — batch-latency p99 ratio (<1 = win)
  //   batchcmp.rma_ops_per_key_batched — RMA ops per requested key
  ClientConfig naive_cc;
  naive_cc.client_id = 90;
  naive_cc.batch_multiget = false;
  Client* naive = cell.AddClient(naive_cc);
  ClientConfig batched_cc;
  batched_cc.client_id = 91;
  Client* batched = cell.AddClient(batched_cc);
  (void)RunOp(sim, naive->Connect());
  (void)RunOp(sim, batched->Connect());

  constexpr int kCmpKeys = 2000;
  Preload(sim, batched, "cmp/", kCmpKeys, 512);

  constexpr int kCmpBatches = 160;
  Rng cmp_rng(99);
  ZipfSampler cmp_zipf(kCmpKeys, 0.99);
  BatchDistribution cmp_batches(24, 300);
  std::vector<std::vector<std::string>> sequences;
  int64_t cmp_keys = 0;
  for (int b = 0; b < kCmpBatches; ++b) {
    std::vector<std::string> keys;
    const uint32_t n = cmp_batches.Sample(cmp_rng);
    for (uint32_t i = 0; i < n; ++i) {
      keys.push_back("cmp/" + std::to_string(cmp_zipf.Sample(cmp_rng)));
    }
    cmp_keys += int64_t(keys.size());
    sequences.push_back(std::move(keys));
  }

  auto rma_ops = [](const metrics::Snapshot& s) {
    return s.SumPrefix("cm.rma.reads") + s.SumPrefix("cm.rma.scars") +
           s.SumPrefix("cm.rma.vector_reads") +
           s.SumPrefix("cm.rma.vector_scars");
  };
  auto run_phase = [&](Client* client, Histogram* latency) {
    const int64_t ops_before = rma_ops(cell.metrics().TakeSnapshot());
    for (const auto& keys : sequences) {
      const sim::Time start = sim.now();
      auto batch = RunOp(sim, client->MultiGet(keys));
      latency->Record(sim.now() - start);
      (void)batch;
    }
    return rma_ops(cell.metrics().TakeSnapshot()) - ops_before;
  };
  Histogram naive_lat, batched_lat;
  const int64_t naive_ops = run_phase(naive, &naive_lat);
  const int64_t batched_ops = run_phase(batched, &batched_lat);

  const double p99_ratio = double(batched_lat.Percentile(0.99)) /
                           std::max(1.0, double(naive_lat.Percentile(0.99)));
  const auto& bs = batched->stats();
  const double coalesce =
      double(bs.batch_vector_entries) / double(std::max<int64_t>(1, bs.batch_vector_ops));
  report.AddScalar("batchcmp.batched_over_naive_p99", p99_ratio);
  report.AddScalar("batchcmp.rma_ops_per_key_batched",
                   double(batched_ops) / double(cmp_keys));
  report.AddScalar("batchcmp.rma_ops_per_key_naive",
                   double(naive_ops) / double(cmp_keys));
  // Informational (higher is better; kept out of the perf gate's filter).
  report.AddScalar("batchcmp.info_coalesce_entries_per_op", coalesce);

  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\nBatched vs naive MultiGet (same %d batches, %lld keys):\n"
      "  p99 batch latency: naive %.1fus  batched %.1fus  (ratio %.2f)\n"
      "  RMA ops/key:       naive %.2f    batched %.2f    (coalesce %.1f entries/op)\n",
      kCmpBatches, static_cast<long long>(cmp_keys),
      naive_lat.Percentile(0.99) / 1000.0, batched_lat.Percentile(0.99) / 1000.0,
      p99_ratio, double(naive_ops) / double(cmp_keys),
      double(batched_ops) / double(cmp_keys), coalesce);
  std::printf(
      "\nTakeaway check: GET rate >> SET rate with a diurnal swing; medians\n"
      "flat in the tens of us; batching pushes the 99.9p tail toward ms;\n"
      "per-backend coalescing cuts RMA ops/key and the batch p99.\n");
  return 0;
}
