// Figure 10: Ads and Geo object-size CDFs.
//
// Expected shape: both corpora are dominated by small objects (typically
// at most a few KB — smaller than the 5KB MTU), with a tail of larger
// objects; Ads skews larger than Geo.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::workload;
  cm::bench::JsonReport report(argc, argv, "fig10_size_cdf");
  if (!report.enabled()) {
    std::printf(
        "Figure 10: object size CDFs (Ads and Geo synthetic mixtures)\n");
  }

  constexpr int kSamples = 200000;
  Rng rng(20210823);
  SizeDistribution ads = SizeDistribution::Ads();
  SizeDistribution geo = SizeDistribution::Geo();
  std::vector<uint32_t> ads_s, geo_s;
  ads_s.reserve(kSamples);
  geo_s.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    ads_s.push_back(ads.Sample(rng));
    geo_s.push_back(geo.Sample(rng));
  }
  std::sort(ads_s.begin(), ads_s.end());
  std::sort(geo_s.begin(), geo_s.end());

  auto at = [&](const std::vector<uint32_t>& v, double q) {
    return v[std::min(v.size() - 1, size_t(q * double(v.size())))];
  };
  if (!report.enabled()) {
    std::printf("%8s %14s %14s\n", "CDF", "Ads size(B)", "Geo size(B)");
  }
  for (double q : {0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99,
                   0.999}) {
    char tag[32];
    std::snprintf(tag, sizeof(tag), "q%.3f", q);
    report.AddScalar(std::string(tag) + ".ads_bytes", at(ads_s, q));
    report.AddScalar(std::string(tag) + ".geo_bytes", at(geo_s, q));
    if (report.enabled()) continue;
    std::printf("%8.3f %14u %14u\n", q, at(ads_s, q), at(geo_s, q));
  }

  // The MTU claim: most objects fit in one 5KB frame.
  auto frac_below = [&](const std::vector<uint32_t>& v, uint32_t bytes) {
    return double(std::lower_bound(v.begin(), v.end(), bytes) - v.begin()) /
           double(v.size());
  };
  report.AddScalar("ads_frac_under_mtu", frac_below(ads_s, 5000));
  report.AddScalar("geo_frac_under_mtu", frac_below(geo_s, 5000));
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf("\nfraction under 5KB MTU: Ads %.1f%%  Geo %.1f%%\n",
              100 * frac_below(ads_s, 5000), 100 * frac_below(geo_s, 5000));
  std::printf("Takeaway check: medians of a few hundred B to ~1KB, heavy\n"
              "tails; Ads skews larger than Geo; most objects < one MTU.\n");
  return 0;
}
