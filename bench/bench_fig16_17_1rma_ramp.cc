// Figures 16 + 17: 1RMA (all-hardware transport) load ramp.
//
// §7.2.4: with 1RMA there is no SCAR, so each GET uses 2xR and two fabric
// RTTs — but the serving path is entirely hardware, so:
//   Fig 16: NIC-emitted fabric+PCIe latency rises only marginally with
//           load (the 4KB x peak rate demands only a fraction of PCIe).
//   Fig 17: end-to-end GET latency is dominated by client CPU and stays
//           insensitive to load — and is *highest at the lowest load*,
//           because idle cores pay C-state wake penalties.
#include "bench_util.h"

#include "common/rng.h"
#include "rma/hwrma.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig16_17_1rma_ramp");
  if (!report.enabled()) {
    Banner("Figures 16+17: 1RMA load ramp (2xR, 4KB values, hardware path)\n"
           "(Fig 16: NIC fabric+PCIe timestamps; Fig 17: end-to-end GETs)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 8;
  o.mode = ReplicationMode::kR1;
  o.transport = TransportKind::kOneRma;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 16 << 20;
  o.backend.data_max_bytes = 64 << 20;
  // C-state modeling on all hosts: idle cores pay a wake penalty.
  o.backend_host.cpu.cstate_wake_penalty = sim::Microseconds(8);
  o.backend_host.cpu.cstate_idle_threshold = sim::Microseconds(300);
  o.client_host.cpu.cstate_wake_penalty = sim::Microseconds(8);
  o.client_host.cpu.cstate_idle_threshold = sim::Microseconds(300);
  Cell cell(sim, std::move(o));
  cell.Start();

  constexpr int kClients = 16;
  std::vector<Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    clients.push_back(cell.AddClient(cc));
    (void)RunOp(sim, clients.back()->Connect());
  }
  Preload(sim, clients[0], "onerma-", 2000, 4096);

  if (!report.enabled()) {
    std::printf("%16s | %9s %9s %9s | %9s %9s %9s\n", "", "fig16", "fabric+",
                "PCIe", "fig17", "GET", "e2e");
    std::printf("%16s | %9s %9s %9s | %9s %9s %9s\n", "rate(GET/s)", "p50_us",
                "p90_us", "p99_us", "p50_us", "p90_us", "p99_us");
  }
  double base_hw_p50 = 0;
  for (double per_client_rate : {100.0, 500.0, 2000.0, 8000.0, 20000.0,
                                 40000.0}) {
    cell.hwrma()->ResetHwTimestamps();
    WorkloadProfile profile = WorkloadProfile::Uniform(2000, 4096, 1.0);
    profile.name = "onerma";
    std::vector<std::unique_ptr<LoadDriver>> drivers;
    std::vector<sim::Task<void>> tasks;
    for (size_t c = 0; c < clients.size(); ++c) {
      LoadDriver::Options opts;
      opts.qps = per_client_rate;
      opts.duration = sim::Seconds(2);
      opts.window = sim::Seconds(2);
      opts.seed = c + 17;
      drivers.push_back(
          std::make_unique<LoadDriver>(*clients[c], profile, opts));
      tasks.push_back(drivers.back()->Run());
    }
    RunAll(sim, std::move(tasks));
    Histogram get_ns;
    int64_t gets = 0;
    for (const auto& d : drivers) {
      for (const auto& w : d->windows()) {
        get_ns.Merge(w.get_ns);
        gets += w.gets;
      }
    }
    const Histogram& hw = cell.hwrma()->hw_timestamps();
    if (base_hw_p50 == 0) base_hw_p50 = double(hw.Percentile(0.5));
    const std::string tag = "qps" + std::to_string(int64_t(per_client_rate));
    report.AddScalar(tag + ".achieved_get_per_sec", double(gets) / 2.0);
    report.AddScalar(tag + ".hw_p50_us", hw.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".hw_p90_us", hw.Percentile(0.90) / 1000.0);
    report.AddScalar(tag + ".hw_p99_us", hw.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".e2e_p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".e2e_p90_us", get_ns.Percentile(0.90) / 1000.0);
    report.AddScalar(tag + ".e2e_p99_us", get_ns.Percentile(0.99) / 1000.0);
    if (report.enabled()) continue;
    std::printf("%16.0f | %9.2f %9.2f %9.2f | %9.1f %9.1f %9.1f\n",
                double(gets) / 2.0, hw.Percentile(0.50) / 1000.0,
                hw.Percentile(0.90) / 1000.0, hw.Percentile(0.99) / 1000.0,
                get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.90) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0);
  }
  // ---------------------------------------------------------------------
  // 1-RMA hot path: hot-key Zipfian GETs, speculation off (pure 2xR quorum:
  // bucket read + data read) vs on (location-cache hit = ONE direct data
  // read). R1 on the hardware transport is where the location cache pays
  // the most: the index RTT is a full half of every GET.
  // ---------------------------------------------------------------------
  constexpr int kHotKeys = 64;
  constexpr int kGetsPerClient = 2500;
  std::vector<Client*> hot_clients;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(100 + c);
    // Read-mostly hot keys re-hit within milliseconds; stretch the
    // freshness lease accordingly (staleness bound = 50ms, documented
    // tradeoff — the default 200us is tuned for mixed read/write).
    cc.loccache_ttl = sim::Milliseconds(50);
    hot_clients.push_back(cell.AddClient(cc));
    (void)RunOp(sim, hot_clients.back()->Connect());
  }
  Preload(sim, hot_clients[0], "hot-", kHotKeys, 4096);

  auto rma_ops = [&cell] {
    return cell.transport()->stats().reads + cell.transport()->stats().scars;
  };
  auto run_hot_phase = [&](bool speculate, Histogram* lat, int64_t* ok_gets) {
    const int64_t ops_before = rma_ops();
    std::vector<sim::Task<void>> tasks;
    for (int c = 0; c < kClients; ++c) {
      tasks.push_back([](sim::Simulator* sim, Client* cl, bool speculate,
                         uint64_t seed, Histogram* lat,
                         int64_t* ok) -> sim::Task<void> {
        Rng rng(seed);
        ZipfSampler zipf(kHotKeys, 0.99);
        GetOptions opts;
        opts.speculate = speculate;
        for (int i = 0; i < kGetsPerClient; ++i) {
          co_await sim->Delay(
              sim::Microseconds(int64_t(10 + rng.NextBounded(20))));
          const std::string key = "hot-" + std::to_string(zipf.Sample(rng));
          const sim::Time t0 = sim->now();
          auto r = co_await cl->Get(key, opts);
          if (r.ok()) {
            lat->Record(sim->now() - t0);
            ++*ok;
          }
        }
      }(&sim, hot_clients[c], speculate, 0x9E37 + uint64_t(c) * 131, lat,
        ok_gets));
    }
    RunAll(sim, std::move(tasks));
    return rma_ops() - ops_before;
  };

  Histogram quorum_lat, spec_lat;
  int64_t quorum_gets = 0, spec_gets = 0;
  const int64_t quorum_ops = run_hot_phase(false, &quorum_lat, &quorum_gets);
  const int64_t spec_ops = run_hot_phase(true, &spec_lat, &spec_gets);

  int64_t spec_reads = 0, spec_failures = 0;
  for (const Client* c : hot_clients) {
    spec_reads += c->stats().loccache_speculative_reads;
    spec_failures += c->stats().loccache_speculative_failures;
  }
  const double quorum_p50 = quorum_lat.Percentile(0.50) / 1000.0;
  const double spec_p50 = spec_lat.Percentile(0.50) / 1000.0;
  const double p50_ratio = quorum_p50 > 0 ? spec_p50 / quorum_p50 : 1.0;
  const double ops_per_get_quorum =
      quorum_gets > 0 ? double(quorum_ops) / double(quorum_gets) : 0;
  const double ops_per_get_spec =
      spec_gets > 0 ? double(spec_ops) / double(spec_gets) : 0;
  const double success_ratio =
      spec_reads > 0
          ? 100.0 * double(spec_reads - spec_failures) / double(spec_reads)
          : 0;

  report.AddScalar("fig16_17.speculative_p50_over_quorum_p50", p50_ratio);
  report.AddScalar("fig16_17.quorum_hot_p50_us", quorum_p50);
  report.AddScalar("fig16_17.speculative_hot_p50_us", spec_p50);
  report.AddScalar("fig16_17.speculative_hot_p99_us",
                   spec_lat.Percentile(0.99) / 1000.0);
  report.AddScalar("loccache.rma_ops_per_hit_get", ops_per_get_spec);
  report.AddScalar("loccache.rma_ops_per_get_quorum", ops_per_get_quorum);
  report.AddScalar("loccache.speculation_success_ratio", success_ratio);

  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\n1-RMA hot path (Zipf(%d, 0.99), %d GETs/client, lease 50ms):\n"
      "  quorum-only: p50=%6.2fus  rma ops/GET=%5.2f\n"
      "  speculative: p50=%6.2fus  rma ops/GET=%5.2f  success=%5.1f%%\n"
      "  p50 ratio (spec/quorum) = %.2f  (< 0.67 means the >=1.5x win)\n",
      kHotKeys, kGetsPerClient, quorum_p50, ops_per_get_quorum, spec_p50,
      ops_per_get_spec, success_ratio, p50_ratio);
  std::printf(
      "\nTakeaway check (16): fabric+PCIe latency rises only marginally with\n"
      "load. (17): end-to-end latency is flat-to-improving as load rises —\n"
      "the highest tail is at the LOWEST load (C-state wake penalties), and\n"
      "no software bottleneck appears on the serving side. The hot-key\n"
      "phase shows the 1-RMA fast path: a location-cache hit spends ONE\n"
      "direct data read where the 2xR quorum spends two RTTs.\n");
  return 0;
}
