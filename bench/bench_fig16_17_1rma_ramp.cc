// Figures 16 + 17: 1RMA (all-hardware transport) load ramp.
//
// §7.2.4: with 1RMA there is no SCAR, so each GET uses 2xR and two fabric
// RTTs — but the serving path is entirely hardware, so:
//   Fig 16: NIC-emitted fabric+PCIe latency rises only marginally with
//           load (the 4KB x peak rate demands only a fraction of PCIe).
//   Fig 17: end-to-end GET latency is dominated by client CPU and stays
//           insensitive to load — and is *highest at the lowest load*,
//           because idle cores pay C-state wake penalties.
#include "bench_util.h"

#include "rma/hwrma.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig16_17_1rma_ramp");
  if (!report.enabled()) {
    Banner("Figures 16+17: 1RMA load ramp (2xR, 4KB values, hardware path)\n"
           "(Fig 16: NIC fabric+PCIe timestamps; Fig 17: end-to-end GETs)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 8;
  o.mode = ReplicationMode::kR1;
  o.transport = TransportKind::kOneRma;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 16 << 20;
  o.backend.data_max_bytes = 64 << 20;
  // C-state modeling on all hosts: idle cores pay a wake penalty.
  o.backend_host.cpu.cstate_wake_penalty = sim::Microseconds(8);
  o.backend_host.cpu.cstate_idle_threshold = sim::Microseconds(300);
  o.client_host.cpu.cstate_wake_penalty = sim::Microseconds(8);
  o.client_host.cpu.cstate_idle_threshold = sim::Microseconds(300);
  Cell cell(sim, std::move(o));
  cell.Start();

  constexpr int kClients = 16;
  std::vector<Client*> clients;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    clients.push_back(cell.AddClient(cc));
    (void)RunOp(sim, clients.back()->Connect());
  }
  Preload(sim, clients[0], "onerma-", 2000, 4096);

  if (!report.enabled()) {
    std::printf("%16s | %9s %9s %9s | %9s %9s %9s\n", "", "fig16", "fabric+",
                "PCIe", "fig17", "GET", "e2e");
    std::printf("%16s | %9s %9s %9s | %9s %9s %9s\n", "rate(GET/s)", "p50_us",
                "p90_us", "p99_us", "p50_us", "p90_us", "p99_us");
  }
  double base_hw_p50 = 0;
  for (double per_client_rate : {100.0, 500.0, 2000.0, 8000.0, 20000.0,
                                 40000.0}) {
    cell.hwrma()->ResetHwTimestamps();
    WorkloadProfile profile = WorkloadProfile::Uniform(2000, 4096, 1.0);
    profile.name = "onerma";
    std::vector<std::unique_ptr<LoadDriver>> drivers;
    std::vector<sim::Task<void>> tasks;
    for (size_t c = 0; c < clients.size(); ++c) {
      LoadDriver::Options opts;
      opts.qps = per_client_rate;
      opts.duration = sim::Seconds(2);
      opts.window = sim::Seconds(2);
      opts.seed = c + 17;
      drivers.push_back(
          std::make_unique<LoadDriver>(*clients[c], profile, opts));
      tasks.push_back(drivers.back()->Run());
    }
    RunAll(sim, std::move(tasks));
    Histogram get_ns;
    int64_t gets = 0;
    for (const auto& d : drivers) {
      for (const auto& w : d->windows()) {
        get_ns.Merge(w.get_ns);
        gets += w.gets;
      }
    }
    const Histogram& hw = cell.hwrma()->hw_timestamps();
    if (base_hw_p50 == 0) base_hw_p50 = double(hw.Percentile(0.5));
    const std::string tag = "qps" + std::to_string(int64_t(per_client_rate));
    report.AddScalar(tag + ".achieved_get_per_sec", double(gets) / 2.0);
    report.AddScalar(tag + ".hw_p50_us", hw.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".hw_p90_us", hw.Percentile(0.90) / 1000.0);
    report.AddScalar(tag + ".hw_p99_us", hw.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".e2e_p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".e2e_p90_us", get_ns.Percentile(0.90) / 1000.0);
    report.AddScalar(tag + ".e2e_p99_us", get_ns.Percentile(0.99) / 1000.0);
    if (report.enabled()) continue;
    std::printf("%16.0f | %9.2f %9.2f %9.2f | %9.1f %9.1f %9.1f\n",
                double(gets) / 2.0, hw.Percentile(0.50) / 1000.0,
                hw.Percentile(0.90) / 1000.0, hw.Percentile(0.99) / 1000.0,
                get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.90) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0);
  }
  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check (16): fabric+PCIe latency rises only marginally with\n"
      "load. (17): end-to-end latency is flat-to-improving as load rises —\n"
      "the highest tail is at the LOWEST load (C-state wake penalties), and\n"
      "no software bottleneck appears on the serving side.\n");
  return 0;
}
