// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the rows/series of one paper table or figure
// (see DESIGN.md §3 for the experiment index). Absolute numbers come from
// the simulator's cost models; the claims under reproduction are the
// *shapes*: orderings, ratios, crossovers, and flat-vs-degrading curves.
#ifndef CM_BENCH_BENCH_UTIL_H_
#define CM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

#include "cliquemap/cell.h"
#include "workload/workload.h"

namespace cm::bench {

// Runs one client coroutine to completion on the simulator. Unlike
// sim.Run(), this stops as soon as the op resolves, so perpetual background
// actors (antagonists, repair loops, touch flushers) don't spin forever.
template <typename T>
T RunOp(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) {
    sim.RunSteps(1);  // single-step: stop exactly at completion so now() is exact
  }
  return **out;
}

inline void RunAll(sim::Simulator& sim, std::vector<sim::Task<void>> tasks) {
  auto done = std::make_shared<bool>(false);
  sim.Spawn([](sim::Simulator& sim, std::vector<sim::Task<void>> tasks,
               std::shared_ptr<bool> done) -> sim::Task<void> {
    co_await sim::JoinAll(sim, std::move(tasks));
    *done = true;
  }(sim, std::move(tasks), done));
  while (!*done && !sim.empty()) {
    sim.RunSteps(1);
  }
}

// Preloads `count` fixed-size values through a client.
inline void Preload(sim::Simulator& sim, cliquemap::Client* client,
                    const std::string& prefix, int count, uint32_t bytes) {
  for (int i = 0; i < count; ++i) {
    Status s = RunOp(sim, client->Set(prefix + std::to_string(i),
                                      Bytes(bytes, std::byte{0x42})));
    if (!s.ok()) {
      std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
}

struct LatencyRow {
  Histogram hist;  // ns

  void Print(const char* label) const {
    std::printf("%-28s p50=%8.1fus p90=%8.1fus p99=%8.1fus p99.9=%8.1fus n=%lld\n",
                label, hist.Percentile(0.50) / 1000.0,
                hist.Percentile(0.90) / 1000.0,
                hist.Percentile(0.99) / 1000.0,
                hist.Percentile(0.999) / 1000.0,
                static_cast<long long>(hist.count()));
  }
};

// Issues `n` sequential GETs of one key and records latency.
inline Histogram MeasureGets(sim::Simulator& sim, cliquemap::Client* client,
                             const std::string& key, int n) {
  Histogram h;
  for (int i = 0; i < n; ++i) {
    sim::Time start = sim.now();
    auto r = RunOp(sim, client->Get(key));
    if (r.ok()) h.Record(sim.now() - start);
  }
  return h;
}

inline void Banner(const char* what) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

}  // namespace cm::bench

#endif  // CM_BENCH_BENCH_UTIL_H_
