// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the rows/series of one paper table or figure
// (see DESIGN.md §3 for the experiment index). Absolute numbers come from
// the simulator's cost models; the claims under reproduction are the
// *shapes*: orderings, ratios, crossovers, and flat-vs-degrading curves.
#ifndef CM_BENCH_BENCH_UTIL_H_
#define CM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cliquemap/cell.h"
#include "common/json.h"
#include "workload/workload.h"

namespace cm::bench {

// Machine-readable bench output, enabled by `--json` on any bench binary.
//
// When enabled, the bench emits exactly one JSON object on stdout (schema
// "cm.bench.v1") carrying its named scalar results plus any registry metric
// snapshots it attaches — so CI and notebooks regenerate BENCH_*.json files
// instead of scraping printf tables (see EXPERIMENTS.md). Human-readable
// output should be suppressed when enabled() to keep stdout parseable.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, const char* bench_name)
      : bench_name_(bench_name) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]) == "--json") enabled_ = true;
    }
  }
  bool enabled() const { return enabled_; }

  // Named scalar result (flat namespace; dotted names group by convention,
  // e.g. "scar.client_ns_per_op").
  void AddScalar(std::string name, double v) {
    scalars_.emplace_back(std::move(name), v);
  }
  // Attaches a full metrics snapshot (typically a DeltaFrom over the
  // measured section) under `label`.
  void AddSnapshot(std::string label, const metrics::Snapshot& snap) {
    snapshots_.emplace_back(std::move(label), snap.ToJson());
  }

  // Prints the document. Call once, at the end of main, when enabled().
  void Emit() const {
    json::Writer w;
    w.BeginObject();
    w.Key("schema");
    w.String(kSchema);
    w.Key("bench");
    w.String(bench_name_);
    w.Key("scalars");
    w.BeginObject();
    for (const auto& [name, v] : scalars_) {
      w.Key(name);
      w.Double(v);
    }
    w.EndObject();
    w.Key("metrics");
    w.BeginObject();
    for (const auto& [label, json] : snapshots_) {
      w.Key(label);
      w.Raw(json);
    }
    w.EndObject();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  }

  static constexpr std::string_view kSchema = "cm.bench.v1";

 private:
  const char* bench_name_;
  bool enabled_ = false;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> snapshots_;
};

// Runs one client coroutine to completion on the simulator. Unlike
// sim.Run(), this stops as soon as the op resolves, so perpetual background
// actors (antagonists, repair loops, touch flushers) don't spin forever.
template <typename T>
T RunOp(sim::Simulator& sim, sim::Task<T> task) {
  auto out = std::make_shared<std::optional<T>>();
  sim.Spawn([](sim::Task<T> t,
               std::shared_ptr<std::optional<T>> out) -> sim::Task<void> {
    *out = co_await std::move(t);
  }(std::move(task), out));
  while (!out->has_value() && !sim.empty()) {
    sim.RunSteps(1);  // single-step: stop exactly at completion so now() is exact
  }
  return **out;
}

inline void RunAll(sim::Simulator& sim, std::vector<sim::Task<void>> tasks) {
  auto done = std::make_shared<bool>(false);
  sim.Spawn([](sim::Simulator& sim, std::vector<sim::Task<void>> tasks,
               std::shared_ptr<bool> done) -> sim::Task<void> {
    co_await sim::JoinAll(sim, std::move(tasks));
    *done = true;
  }(sim, std::move(tasks), done));
  while (!*done && !sim.empty()) {
    sim.RunSteps(1);
  }
}

// Preloads `count` fixed-size values through a client.
inline void Preload(sim::Simulator& sim, cliquemap::Client* client,
                    const std::string& prefix, int count, uint32_t bytes) {
  for (int i = 0; i < count; ++i) {
    Status s = RunOp(sim, client->Set(prefix + std::to_string(i),
                                      Bytes(bytes, std::byte{0x42})));
    if (!s.ok()) {
      std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
      std::abort();
    }
  }
}

struct LatencyRow {
  Histogram hist;  // ns

  void Print(const char* label) const {
    std::printf("%-28s p50=%8.1fus p90=%8.1fus p99=%8.1fus p99.9=%8.1fus n=%lld\n",
                label, hist.Percentile(0.50) / 1000.0,
                hist.Percentile(0.90) / 1000.0,
                hist.Percentile(0.99) / 1000.0,
                hist.Percentile(0.999) / 1000.0,
                static_cast<long long>(hist.count()));
  }
};

// Issues `n` sequential GETs of one key and records latency.
inline Histogram MeasureGets(sim::Simulator& sim, cliquemap::Client* client,
                             const std::string& key, int n) {
  Histogram h;
  for (int i = 0; i < n; ++i) {
    sim::Time start = sim.now();
    auto r = RunOp(sim, client->Get(key));
    if (r.ok()) h.Record(sim.now() - start);
  }
  return h;
}

inline void Banner(const char* what) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", what);
  std::printf("==============================================================\n");
}

}  // namespace cm::bench

#endif  // CM_BENCH_BENCH_UTIL_H_
