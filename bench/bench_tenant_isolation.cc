// Multi-tenant QoS: aggressor/victim isolation experiment (DESIGN.md §12).
//
// Setup: a WAN-ish cell (300us base RTT) whose clients read over the
// two-sided RPC fallback (LookupStrategy::kRpc), so every GET burns backend
// CPU — the resource the admission queue arbitrates. Each backend has one
// modest core; the sheddable handler cost (40us) dominates the pre-admission
// dispatch cost (2us), so shedding actually protects the core. A
// SET-flooding aggressor offers 10x its RPC ops/s quota against the same
// backends serving an in-quota, GET-heavy, latency-sensitive victim:
//
//   baseline     victim alone, isolation on          -> victim p99 floor
//   isolated     aggressor + victim, isolation on    -> p99 within 20% of
//                floor: the token bucket sheds the flood before the CPU
//                charge, and WFQ (victim weight 8 vs 1) bounds the victim's
//                queueing at one residual handler service
//   unprotected  aggressor + victim, tenancy off     -> the flood's handler
//                demand (25K/s x 42us > 1 core) melts the CPU FIFO and the
//                victim's p99 climbs to its op deadline
//
// Plus a WFQ fairness check: two flooding tenants with weights 3:1 must
// split backend dispatch within 10% of their configured shares (this leans
// on vft pushout — see AdmissionQueue::Admit).
//
// Scalars (all lower-better):
//   victim.p99_degradation_ratio  isolated p99 / baseline p99    (< 1.2)
//   victim.p99_unprotected_ratio  unprotected p99 / baseline p99 (>> isolated)
//   fairness.share_err            |heavy share - 0.75|           (< 0.10)
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "tenant_isolation");
  if (!report.enabled()) {
    Banner("Tenant isolation: aggressor at 10x quota vs in-quota victim");
  }

  constexpr double kAggrQuota = 2500;           // RPC ops/s per backend
  constexpr double kAggrRate = 10 * kAggrQuota; // the flood
  constexpr double kVictimRate = 2000;          // in-quota GET-heavy
  const sim::Duration kWarmup = sim::Seconds(1);
  const sim::Duration kMeasure = sim::Seconds(4);

  auto cell_options = [&](bool isolation) {
    CellOptions o;
    o.num_shards = 3;
    o.mode = ReplicationMode::kR32;
    o.transport = TransportKind::kSoftNic;
    // WAN-ish propagation: the client-observed floor is RTT-dominated, so
    // the p99 ratios read queueing deltas against a realistic baseline.
    o.fabric.base_rtt = sim::Microseconds(300);
    o.backend_host.cpu.cores = 1;
    o.backend.handler_base_cpu = sim::Microseconds(40);
    // Cheap dispatch: the pre-admission framework charge must not saturate
    // the core by itself (shedding cannot protect work done before the
    // tenant is known), leaving the 40us handler as the contended cost.
    o.backend.rpc_costs.server_framework_cpu = sim::Microseconds(2);
    o.backend.initial_buckets = 1024;
    o.backend.data_initial_bytes = 8 << 20;
    o.backend.data_max_bytes = 64 << 20;
    // One handler slot: WFQ ordering, not FIFO luck, decides who runs next,
    // so an in-quota tenant waits at most one residual handler service.
    o.admission.max_concurrency = 1;
    o.admission.max_queue = 256;
    if (isolation) {
      TenantSpec aggr;
      aggr.id = 1;
      aggr.name = "aggressor";
      aggr.priority = PriorityClass::kBestEffort;
      aggr.rpc_ops_per_sec = kAggrQuota;
      TenantSpec victim;
      victim.id = 2;
      victim.name = "victim";
      victim.priority = PriorityClass::kStandard;
      victim.wfq_weight = 8.0;
      o.tenants.Upsert(aggr);
      o.tenants.Upsert(victim);
    }
    return o;
  };

  WorkloadProfile victim_profile = WorkloadProfile::DiurnalVictim(2);
  victim_profile.num_keys = 2000;
  WorkloadProfile aggr_profile = WorkloadProfile::Aggressor(1);

  // Runs one scenario and returns victim GET p99 + op counts.
  auto run_scenario = [&](bool isolation, bool with_aggressor) {
    sim::Simulator sim;
    Cell cell(sim, cell_options(isolation));
    cell.Start();

    ClientConfig vc;
    vc.tenant = isolation ? 2 : 0;
    vc.client_id = 10;
    vc.strategy = LookupStrategy::kRpc;  // GETs must traverse the shared CPU
    Client* victim = cell.AddClient(vc);
    (void)RunOp(sim, victim->Connect());
    Preload(sim, victim, victim_profile.name + "/",
            int(victim_profile.num_keys), 256);

    LoadDriver::Options vo;
    vo.qps = kVictimRate;
    vo.duration = kWarmup + kMeasure;
    vo.window = sim::Seconds(1);
    vo.seed = 7;
    LoadDriver victim_driver(*victim, victim_profile, vo);

    std::vector<sim::Task<void>> tasks;
    tasks.push_back(victim_driver.Run());

    std::unique_ptr<LoadDriver> aggr_driver;
    if (with_aggressor) {
      ClientConfig ac;
      ac.tenant = isolation ? 1 : 0;
      ac.client_id = 20;
      ac.max_retries = 0;  // a shed op is shed, not retried into more load
      Client* aggr = cell.AddClient(ac);
      (void)RunOp(sim, aggr->Connect());
      LoadDriver::Options ao;
      ao.qps = kAggrRate;
      ao.duration = kWarmup + kMeasure;
      ao.window = sim::Seconds(1);
      ao.seed = 13;
      aggr_driver = std::make_unique<LoadDriver>(*aggr, aggr_profile, ao);
      tasks.push_back(aggr_driver->Run());
    }
    RunAll(sim, std::move(tasks));

    Histogram victim_gets;
    for (const auto& w : victim_driver.windows()) {
      if (w.start >= kWarmup) victim_gets.Merge(w.get_ns);
    }
    struct Result {
      double p99_us;
      int64_t gets;
      int64_t backend_sheds;
    } r{victim_gets.Percentile(0.99) / 1000.0, victim_gets.count(),
        cell.AggregateBackendStats().tenant_sheds};
    return r;
  };

  const auto base = run_scenario(/*isolation=*/true, /*with_aggressor=*/false);
  const auto isolated = run_scenario(true, true);
  const auto open = run_scenario(false, true);

  const double iso_ratio = isolated.p99_us / base.p99_us;
  const double open_ratio = open.p99_us / base.p99_us;

  // Fairness: two flooding SET tenants, weights 3:1, no quotas — WFQ alone
  // (dispatch order + pushout under a full queue) must split admitted
  // dispatch by weight.
  double share_err = 0;
  {
    sim::Simulator sim;
    CellOptions o = cell_options(/*isolation=*/false);
    o.admission.max_concurrency = 8;
    TenantSpec heavy;
    heavy.id = 1;
    heavy.name = "heavy";
    heavy.wfq_weight = 3.0;
    TenantSpec light;
    light.id = 2;
    light.name = "light";
    light.wfq_weight = 1.0;
    o.tenants.Upsert(heavy);
    o.tenants.Upsert(light);
    Cell cell(sim, std::move(o));
    cell.Start();

    std::vector<sim::Task<void>> tasks;
    std::vector<std::unique_ptr<LoadDriver>> drivers;
    for (TenantId id : {TenantId{1}, TenantId{2}}) {
      ClientConfig cc;
      cc.tenant = id;
      cc.client_id = 30 + id;
      cc.max_retries = 0;
      Client* c = cell.AddClient(cc);
      (void)RunOp(sim, c->Connect());
      WorkloadProfile p = WorkloadProfile::Aggressor(id);
      p.get_fraction = 0;  // pure RPC-plane SET pressure
      LoadDriver::Options lo;
      lo.qps = 20000;  // equal demand; combined well past backend capacity
      lo.duration = sim::Seconds(3);
      lo.seed = 17 + id;
      drivers.push_back(std::make_unique<LoadDriver>(*c, p, lo));
      tasks.push_back(drivers.back()->Run());
    }
    RunAll(sim, std::move(tasks));

    int64_t heavy_admitted = 0, light_admitted = 0;
    for (uint32_t s = 0; s < cell.num_shards(); ++s) {
      AdmissionQueue* q = cell.backend(s).admission();
      heavy_admitted += q->admitted(1);
      light_admitted += q->admitted(2);
    }
    const double share =
        double(heavy_admitted) / double(heavy_admitted + light_admitted);
    share_err = std::abs(share - 0.75);
    if (!report.enabled()) {
      std::printf("\nWFQ fairness (weights 3:1, both flooding):\n"
                  "  heavy admitted %lld  light admitted %lld  "
                  "share %.3f (want 0.750)  err %.3f\n",
                  static_cast<long long>(heavy_admitted),
                  static_cast<long long>(light_admitted), share, share_err);
    }
  }

  if (!report.enabled()) {
    std::printf("\n%-34s %10s %10s %10s\n", "scenario", "p99_us", "gets",
                "sheds");
    std::printf("%-34s %10.1f %10lld %10lld\n", "victim alone (baseline)",
                base.p99_us, static_cast<long long>(base.gets),
                static_cast<long long>(base.backend_sheds));
    std::printf("%-34s %10.1f %10lld %10lld\n", "with aggressor, isolation on",
                isolated.p99_us, static_cast<long long>(isolated.gets),
                static_cast<long long>(isolated.backend_sheds));
    std::printf("%-34s %10.1f %10lld %10lld\n", "with aggressor, tenancy off",
                open.p99_us, static_cast<long long>(open.gets),
                static_cast<long long>(open.backend_sheds));
    std::printf("\nvictim p99 degradation: %.2fx isolated, %.2fx unprotected "
                "(goal: < 1.20x with isolation)\n",
                iso_ratio, open_ratio);
  }

  report.AddScalar("victim.p99_base_us", base.p99_us);
  report.AddScalar("victim.p99_isolated_us", isolated.p99_us);
  report.AddScalar("victim.p99_unprotected_us", open.p99_us);
  report.AddScalar("victim.p99_degradation_ratio", iso_ratio);
  report.AddScalar("victim.p99_unprotected_ratio", open_ratio);
  report.AddScalar("fairness.share_err", share_err);
  // Gated form: floored at 0.05 so the ratio-based perf gate is insensitive
  // to benign jitter in a near-zero error, yet its 2x fail threshold lands
  // exactly on the 0.10 acceptance bound for WFQ share tracking.
  report.AddScalar("fairness.share_err_floor", std::max(share_err, 0.05));
  if (report.enabled()) report.Emit();
  return 0;
}
