// Domain outage: a whole failure domain (2 of 6 backends) dies mid-load —
// the correlated failure that per-shard MTBF math ignores (DESIGN.md §15).
//
// Three passes over the same workload and outage schedule:
//   clustered / fail-fast   domains laid out adjacently (spread-violating:
//                           two replica sets have 2 members in the dying
//                           domain), degraded reads off. Keys whose sets
//                           drop below quorum hard-fail until the doctor
//                           rebuilds the domain: the worst-case dip.
//   clustered / degraded    same placement, degraded reads on. The same
//                           sub-quorum keys are served best-effort (flagged)
//                           from the surviving replica: the dip shrinks.
//   spread    / degraded    domain-spread placement (every replica set
//                           spans all 3 domains). Losing a whole domain
//                           costs each set exactly one member — quorum
//                           holds everywhere and the dip ~vanishes. This is
//                           the placement RebalanceDomains converges to.
//
// Reported scalars (perf-gated, see scripts/check.sh):
//   domain_outage.availability_dip_frac  clustered/degraded deepest-window dip
//   domain_outage.time_to_quorum_ms      outage -> last replacement converged
//   domain_outage.dip_frac_fail_fast     clustered/fail-fast dip (the contrast)
//   domain_outage.dip_frac_spread        spread-placement dip (~0)
//   domain_outage.degraded_fraction      degraded hits / successful GETs
#include "bench_util.h"
#include "cliquemap/doctor.h"

namespace {

using namespace cm;
using namespace cm::bench;
using namespace cm::cliquemap;
using namespace cm::workload;

constexpr int kWindowSec = 5;
constexpr int kOutageSec = 30;
constexpr int kDurationSec = 100;

struct PassResult {
  std::vector<double> goodput;       // per-window (gets - errors) / window
  double dip_frac = 0;               // deepest post-outage window vs baseline
  double degraded_fraction = 0;      // degraded hits / ok GETs
  double time_to_quorum_ms = 0;      // outage -> last recovery converged
  int64_t degraded_hits = 0;
  int64_t inquorate = 0;
  int64_t domain_down_events = 0;
  int recoveries = 0;
};

PassResult RunPass(bool spread_placement, bool degraded_reads) {
  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 6;
  o.mode = ReplicationMode::kR32;
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 8 << 20;
  o.backend.data_max_bytes = 64 << 20;
  // Spread: slot s % 3 -> A B C A B C (every replica set spans all three).
  // Clustered: A A B B C C (sets at p=5 and p=0 hold two A members).
  o.failure_domains = spread_placement
                          ? std::vector<std::string>{"A", "B", "C"}
                          : std::vector<std::string>{"A", "A", "B", "B",
                                                     "C", "C"};
  Cell cell(sim, std::move(o));
  cell.Start();

  // Production-scaled control plane (the unit-test doctor runs ms-scaled).
  DoctorOptions dopt;
  dopt.probe_interval = sim::Milliseconds(500);
  dopt.probe_timeout = sim::Milliseconds(100);
  dopt.suspect_after_misses = 2;
  dopt.dead_after_misses = 5;
  dopt.heartbeat_interval = sim::Seconds(1);
  dopt.lease_duration = sim::Seconds(5);
  dopt.cooldown = sim::Seconds(30);
  dopt.max_concurrent_recoveries = 2;  // the whole domain needs rebuilding
  CellDoctor doctor(cell, dopt);
  doctor.Start();

  WorkloadProfile profile = WorkloadProfile::Uniform(3000, 1024, 1.0);
  constexpr int kClients = 3;
  auto loaded = std::make_shared<sim::Notification>(sim);
  std::vector<Client*> clients;
  std::vector<std::unique_ptr<LoadDriver>> drivers;
  std::vector<sim::Task<void>> tasks;
  for (int c = 0; c < kClients; ++c) {
    ClientConfig cc;
    cc.client_id = uint32_t(c + 1);
    cc.hedge_reads = true;
    cc.eject_slow_replicas = true;
    cc.degraded_reads = degraded_reads;
    Client* client = cell.AddClient(cc);
    clients.push_back(client);
    LoadDriver::Options opts;
    opts.qps = 1500;
    opts.duration = sim::Seconds(kDurationSec);
    opts.window = sim::Seconds(kWindowSec);
    opts.seed = uint64_t(c + 1);
    drivers.push_back(std::make_unique<LoadDriver>(*client, profile, opts));
    tasks.push_back([](Client* client, LoadDriver* d, bool preload,
                       std::shared_ptr<sim::Notification> loaded)
                        -> sim::Task<void> {
      (void)co_await client->Connect();
      if (preload) {
        Status s = co_await d->Preload();
        if (!s.ok()) std::printf("preload: %s\n", s.ToString().c_str());
        loaded->Notify();
      } else {
        co_await loaded->Wait();
      }
      co_await d->Run();
    }(client, drivers.back().get(), c == 0, loaded));
  }

  // The correlated failure, scheduled on the fault plan and consumed here:
  // every backend in domain A dies in the same instant. Nobody restarts
  // them — healing is the doctor's job alone.
  auto plan = std::make_shared<net::FaultPlan>(7);
  net::DomainOutageEvent outage;
  outage.domain = "A";
  for (uint32_t s = 0; s < cell.num_shards(); ++s) {
    if (cell.backend(s).config().failure_domain == "A") {
      outage.shards.push_back(s);
    }
  }
  outage.at = sim::Seconds(kOutageSec);
  plan->ScheduleDomainOutage(outage);
  cell.fabric().InstallFaults(plan);
  for (const net::DomainOutageEvent& ev : plan->domain_outage_schedule()) {
    tasks.push_back([](sim::Simulator& sim, Cell* cell,
                       net::DomainOutageEvent ev) -> sim::Task<void> {
      co_await sim.WaitUntil(ev.at);
      for (uint32_t s : ev.shards) cell->CrashShard(s);
    }(sim, &cell, ev));
  }

  RunAll(sim, std::move(tasks));
  doctor.Stop();

  PassResult res;
  size_t max_windows = 0;
  for (const auto& d : drivers) {
    max_windows = std::max(max_windows, d->windows().size());
  }
  int64_t total_gets = 0, total_errors = 0;
  for (size_t w = 0; w < max_windows; ++w) {
    int64_t gets = 0, errors = 0;
    for (const auto& d : drivers) {
      if (w >= d->windows().size()) continue;
      gets += d->windows()[w].gets;
      errors += d->windows()[w].get_errors;
    }
    res.goodput.push_back(double(gets - errors) / double(kWindowSec));
    total_gets += gets;
    total_errors += errors;
  }

  // Deepest post-outage window against the pre-outage median (skip the
  // warm-up window).
  const size_t outage_w = size_t(kOutageSec / kWindowSec);
  std::vector<double> pre(res.goodput.begin() + 1,
                          res.goodput.begin() +
                              std::min(outage_w, res.goodput.size()));
  std::sort(pre.begin(), pre.end());
  const double pre_median = pre.empty() ? 0.0 : pre[pre.size() / 2];
  double min_after = pre_median;
  for (size_t w = outage_w; w < res.goodput.size(); ++w) {
    min_after = std::min(min_after, res.goodput[w]);
  }
  res.dip_frac =
      pre_median > 0.0 ? std::max(0.0, 1.0 - min_after / pre_median) : 0.0;

  for (const Client* c : clients) {
    res.degraded_hits += c->stats().degraded_hits;
    res.inquorate += c->stats().inquorate;
  }
  const int64_t ok_gets = total_gets - total_errors;
  res.degraded_fraction =
      ok_gets > 0 ? double(res.degraded_hits) / double(ok_gets) : 0.0;

  // Time to quorum restored: outage instant -> the last replacement fully
  // converged (every replica set back at R live members).
  int64_t last_converged = 0;
  for (const auto& r : doctor.recoveries()) {
    if (!r.ok) continue;
    ++res.recoveries;
    last_converged = std::max(last_converged, r.converged_at);
  }
  if (last_converged > 0) {
    res.time_to_quorum_ms =
        double(last_converged - sim::Seconds(kOutageSec)) / 1e6;
  }
  res.domain_down_events = doctor.stats().domain_down_events;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  JsonReport report(argc, argv, "domain_outage");
  if (!report.enabled()) {
    Banner("Domain outage: one failure domain (2/6 backends) dies at t=30s\n"
           "(R=3.2; clustered placement loses quorum on 1/3 of the keyspace\n"
           "until the doctor rebuilds the domain — degraded reads serve it\n"
           "best-effort meanwhile; spread placement never loses quorum)");
  }

  const PassResult fail_fast = RunPass(/*spread=*/false, /*degraded=*/false);
  const PassResult degraded = RunPass(/*spread=*/false, /*degraded=*/true);
  const PassResult spread = RunPass(/*spread=*/true, /*degraded=*/true);

  if (!report.enabled()) {
    std::printf("%7s %22s %22s %22s\n", "t(s)", "clustered/fail-fast",
                "clustered/degraded", "spread/degraded");
    const size_t n = std::max({fail_fast.goodput.size(),
                               degraded.goodput.size(),
                               spread.goodput.size()});
    for (size_t w = 0; w < n; ++w) {
      auto at = [&](const PassResult& p) {
        return w < p.goodput.size() ? p.goodput[w] : 0.0;
      };
      const char* note =
          w == size_t(kOutageSec / kWindowSec) ? "  <- domain A dies" : "";
      std::printf("%7zu %18.0f/s %18.0f/s %18.0f/s%s\n", w * kWindowSec,
                  at(fail_fast), at(degraded), at(spread), note);
    }
  }

  report.AddScalar("availability_dip_frac", degraded.dip_frac);
  report.AddScalar("time_to_quorum_ms", degraded.time_to_quorum_ms);
  report.AddScalar("dip_frac_fail_fast", fail_fast.dip_frac);
  report.AddScalar("dip_frac_spread", spread.dip_frac);
  report.AddScalar("degraded_fraction", degraded.degraded_fraction);
  report.AddScalar("degraded_hits", double(degraded.degraded_hits));
  report.AddScalar("fail_fast_inquorate", double(fail_fast.inquorate));
  report.AddScalar("recoveries", double(degraded.recoveries));
  report.AddScalar("domain_down_events", double(degraded.domain_down_events));
  if (report.enabled()) {
    report.Emit();
    return 0;
  }

  std::printf(
      "\nDip (deepest window vs pre-outage median):\n"
      "  clustered/fail-fast: %5.1f%%   (inquorate=%lld)\n"
      "  clustered/degraded:  %5.1f%%   (degraded_hits=%lld, %.1f%% of GETs)\n"
      "  spread/degraded:     %5.1f%%   (quorum never lost)\n"
      "Self-healing: recoveries=%d domain_down_events=%lld "
      "time_to_quorum=%.0fms\n",
      fail_fast.dip_frac * 100.0, static_cast<long long>(fail_fast.inquorate),
      degraded.dip_frac * 100.0,
      static_cast<long long>(degraded.degraded_hits),
      degraded.degraded_fraction * 100.0, spread.dip_frac * 100.0,
      degraded.recoveries, static_cast<long long>(degraded.domain_down_events),
      degraded.time_to_quorum_ms);
  std::printf(
      "\nTakeaway check: fail-fast hard-fails the sub-quorum keyspace slice;\n"
      "degraded reads shrink the dip by serving it flagged; domain-spread\n"
      "placement removes the dip entirely. The doctor rebuilds the lost\n"
      "domain with zero operator calls either way.\n");
  return 0;
}
