// Figure 20: performance under varying value sizes (32B .. 16KB).
//
// §7.2.5: for the sizes common in production, per-op fixed costs dominate
// — GET and SET latencies are nearly flat until values become large enough
// for serialization (bytes-per-op) to matter.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig20_value_size");
  if (!report.enabled()) {
    Banner("Figure 20: value size sweep at fixed GET rate (R=3.2)");
    std::printf("%8s | %9s %9s | %9s %9s\n", "size", "GET_p50us", "GET_p99us",
                "SET_p50us", "SET_p99us");
  }
  for (uint32_t size : {32u, 256u, 2048u, 16384u}) {
    sim::Simulator sim;
    CellOptions o;
    o.num_shards = 6;
    o.mode = ReplicationMode::kR32;
    o.backend.initial_buckets = 512;
    o.backend.data_initial_bytes = 16 << 20;
    o.backend.data_max_bytes = 128 << 20;
    Cell cell(sim, std::move(o));
    cell.Start();

    constexpr int kClients = 4;
    WorkloadProfile profile = WorkloadProfile::Uniform(1500, size, 0.90);
    std::vector<std::unique_ptr<LoadDriver>> drivers;
    std::vector<sim::Task<void>> tasks;
    std::vector<Client*> clients;
    for (int c = 0; c < kClients; ++c) {
      ClientConfig cc;
      cc.client_id = uint32_t(c + 1);
      clients.push_back(cell.AddClient(cc));
      (void)RunOp(sim, clients.back()->Connect());
    }
    Preload(sim, clients[0], "uniform/", 1500, size);

    for (int c = 0; c < kClients; ++c) {
      LoadDriver::Options opts;
      opts.qps = 1500;
      opts.duration = sim::Seconds(4);
      opts.window = sim::Seconds(4);
      opts.seed = uint64_t(c + 31);
      drivers.push_back(
          std::make_unique<LoadDriver>(*clients[size_t(c)], profile, opts));
      tasks.push_back(drivers.back()->Run());
    }
    RunAll(sim, std::move(tasks));

    Histogram get_ns, set_ns;
    for (const auto& d : drivers) {
      for (const auto& w : d->windows()) {
        get_ns.Merge(w.get_ns);
        set_ns.Merge(w.set_ns);
      }
    }
    const std::string tag = "b" + std::to_string(size);
    report.AddScalar(tag + ".get_p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".get_p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".set_p50_us", set_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".set_p99_us", set_ns.Percentile(0.99) / 1000.0);
    if (report.enabled()) {
      report.AddSnapshot(tag, cell.metrics().TakeSnapshot());
      continue;
    }
    std::printf("%7uB | %9.1f %9.1f | %9.1f %9.1f\n", size,
                get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0,
                set_ns.Percentile(0.50) / 1000.0,
                set_ns.Percentile(0.99) / 1000.0);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: latencies nearly flat through the production-common\n"
      "sizes (fixed per-op costs dominate); only the largest values bend the\n"
      "curve upward.\n");
  return 0;
}
