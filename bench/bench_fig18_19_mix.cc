// Figures 18 + 19: behavior under varying GET/SET mixes (4KB values).
//
// §7.2.5: with 5% / 50% / 95% GETs, progressively more of the workload can
// use RMA. Expected shapes: SET latency >> GET latency at every mix (RPC vs
// one-sided); backend CPU consumption grows with the RPC-based SET share
// (Fig 19); GET latency stays nominal across mixes.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig18_19_mix");
  if (!report.enabled()) {
    Banner("Figures 18+19: GET/SET mix sweep (4KB values, R=3.2)");
    std::printf("%10s | %9s %9s %9s %9s | %12s | %10s\n", "mix", "GET_p50",
                "GET_p99", "SET_p50", "SET_p99", "backendCPU", "evict/SET");
    std::printf("%10s | %9s %9s %9s %9s | %12s |\n", "", "(us)", "(us)",
                "(us)", "(us)", "(CPU-ms/s)");
  }
  for (double get_fraction : {0.05, 0.50, 0.95}) {
    sim::Simulator sim;
    CellOptions o;
    o.num_shards = 6;
    o.mode = ReplicationMode::kR32;
    o.backend.initial_buckets = 512;
    o.backend.data_initial_bytes = 16 << 20;
    o.backend.data_max_bytes = 64 << 20;
    Cell cell(sim, std::move(o));
    cell.Start();

    constexpr int kClients = 4;
    WorkloadProfile profile = WorkloadProfile::Uniform(2000, 4096, get_fraction);
    std::vector<std::unique_ptr<LoadDriver>> drivers;
    std::vector<sim::Task<void>> tasks;
    std::vector<Client*> clients;
    for (int c = 0; c < kClients; ++c) {
      ClientConfig cc;
      cc.client_id = uint32_t(c + 1);
      Client* client = cell.AddClient(cc);
      clients.push_back(client);
      (void)RunOp(sim, client->Connect());
    }
    Preload(sim, clients[0], "uniform/", 2000, 4096);

    int64_t cpu0 = 0;
    for (uint32_t s = 0; s < cell.num_shards(); ++s) {
      cpu0 += cell.fabric().host(cell.backend(s).host()).cpu().total_busy_ns();
    }
    const sim::Duration kRun = sim::Seconds(5);
    for (int c = 0; c < kClients; ++c) {
      LoadDriver::Options opts;
      opts.qps = 1500;
      opts.duration = kRun;
      opts.window = kRun;
      opts.seed = uint64_t(c + 1);
      drivers.push_back(
          std::make_unique<LoadDriver>(*clients[size_t(c)], profile, opts));
      tasks.push_back(drivers.back()->Run());
    }
    RunAll(sim, std::move(tasks));
    int64_t cpu1 = 0;
    for (uint32_t s = 0; s < cell.num_shards(); ++s) {
      cpu1 += cell.fabric().host(cell.backend(s).host()).cpu().total_busy_ns();
    }

    Histogram get_ns, set_ns;
    for (const auto& d : drivers) {
      for (const auto& w : d->windows()) {
        get_ns.Merge(w.get_ns);
        set_ns.Merge(w.set_ns);
      }
    }
    const BackendStats agg = cell.AggregateBackendStats();
    const double evict_per_set =
        agg.sets_applied
            ? double(agg.evictions_capacity + agg.evictions_assoc) /
                  double(agg.sets_applied)
            : 0.0;
    const std::string tag =
        "get" + std::to_string(int(100 * get_fraction + 0.5));
    report.AddScalar(tag + ".get_p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".get_p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".set_p50_us", set_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".set_p99_us", set_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".backend_cpu_ms_per_sec",
                     double(cpu1 - cpu0) / 1e6 / sim::ToSeconds(kRun));
    report.AddScalar(tag + ".evict_per_set", evict_per_set);
    report.AddSnapshot(tag, cell.metrics().TakeSnapshot());
    if (report.enabled()) continue;
    std::printf("%8.0f%% | %9.1f %9.1f %9.1f %9.1f | %12.2f | %10.3f\n",
                100 * get_fraction, get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0,
                set_ns.Percentile(0.50) / 1000.0,
                set_ns.Percentile(0.99) / 1000.0,
                double(cpu1 - cpu0) / 1e6 / sim::ToSeconds(kRun),
                evict_per_set);
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check (18): SETs (RPC) cost far more latency than GETs\n"
      "(RMA) at every mix; GET latency nominal throughout. (19): backend\n"
      "CPU-per-second falls as the GET share rises — more of the workload\n"
      "bypasses the server CPU entirely.\n");
  return 0;
}
