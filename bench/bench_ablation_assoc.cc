// Ablation: bucket associativity (ways) vs associativity-conflict rate,
// and the optional RPC overflow fallback (§4.2).
//
// Fewer ways => more associativity conflicts (evictions of RMA-servable
// keys); the overflow fallback trades those evictions for RPC-served hits.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  JsonReport report(argc, argv, "ablation_assoc");
  if (!report.enabled()) {
    Banner("Ablation: bucket associativity and the RPC overflow fallback\n"
           "(2000 keys into a fixed 64-bucket index; no resizing)");
    std::printf("%6s %10s %16s %14s %12s\n", "ways", "overflow",
                "assoc_evicts", "overflow_keys", "hit rate");
  }
  for (int ways : {2, 4, 8, 20}) {
    for (bool fallback : {false, true}) {
      sim::Simulator sim;
      CellOptions o;
      o.num_shards = 2;
      o.mode = ReplicationMode::kR1;
      o.backend.ways = ways;
      o.backend.initial_buckets = 64;
      o.backend.index_load_limit = 10.0;  // never resize: isolate the effect
      o.backend.rpc_fallback_on_overflow = fallback;
      o.backend.data_initial_bytes = 8 << 20;
      o.backend.data_max_bytes = 8 << 20;
      Cell cell(sim, std::move(o));
      cell.Start();
      Client* client = cell.AddClient();
      (void)RunOp(sim, client->Connect());

      constexpr int kKeys = 2000;
      Preload(sim, client, "assoc-", kKeys, 256);
      int64_t hits = 0;
      for (int i = 0; i < kKeys; ++i) {
        auto r = RunOp(sim, client->Get("assoc-" + std::to_string(i)));
        if (r.ok()) ++hits;
      }
      const BackendStats agg = cell.AggregateBackendStats();
      const std::string tag = "ways" + std::to_string(ways) +
                              (fallback ? ".rpc" : ".evict");
      report.AddScalar(tag + ".assoc_evicts", double(agg.evictions_assoc));
      report.AddScalar(tag + ".overflow_keys", double(agg.overflow_inserts));
      report.AddScalar(tag + ".hit_rate", double(hits) / kKeys);
      report.AddSnapshot(tag, cell.metrics().TakeSnapshot());
      if (report.enabled()) continue;
      std::printf("%6d %10s %16lld %14lld %11.1f%%\n", ways,
                  fallback ? "rpc" : "evict",
                  static_cast<long long>(agg.evictions_assoc),
                  static_cast<long long>(agg.overflow_inserts),
                  100.0 * double(hits) / kKeys);
    }
  }
  if (report.enabled()) {
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: conflicts vanish as ways grow (the paper's default\n"
      "geometry makes them rare); with few ways the RPC fallback converts\n"
      "would-be evictions into (slower) hits.\n");
  return 0;
}
