// Figure 15: software-NIC (Pony Express) load ramp with engine scale-out.
//
// §7.2.4: a 500-backend R=1 cell with SCAR and 4KB values; load ramps up
// while Pony engines scale from time-multiplexing one core to one core
// each. Co-tenant hosts (backend + clients) are busier and scale out
// first; client-only hosts follow; client-side scale-out *reduces* tail
// latency even as load keeps rising.
//
// Scaled to 12 backends / 36 clients; the reproduced shape: co-tenant
// engine count rises before client-only, and p99 drops when client-only
// hosts scale out despite increasing load.
#include "bench_util.h"

#include "rma/softnic.h"

int main(int argc, char** argv) {
  using namespace cm;
  using namespace cm::bench;
  using namespace cm::cliquemap;
  using namespace cm::workload;
  JsonReport report(argc, argv, "fig15_pony_ramp");
  if (!report.enabled()) {
    Banner("Figure 15: software-NIC load ramp + engine scale-out\n"
           "(R=1, SCAR, 4KB values; 6 backends, 12 co-tenant + 18 packed solo clients)");
  }

  sim::Simulator sim;
  CellOptions o;
  o.num_shards = 6;
  o.mode = ReplicationMode::kR1;
  o.transport = TransportKind::kSoftNic;
  o.softnic.max_engines = 6;
  // Engines time-multiplex cores with other services' traffic at this
  // scaled-down cell size: per-op engine costs are inflated so the offered
  // rates reach the scale-out regime (the paper drives 800K ops/s/backend).
  o.softnic.initiator_op_cost = sim::Microseconds(4);
  o.softnic.target_read_cost = sim::Microseconds(6);
  o.softnic.target_scar_cost = sim::Microseconds(8);
  o.softnic.scale_window = sim::Milliseconds(5);
  o.backend.initial_buckets = 512;
  o.backend.data_initial_bytes = 16 << 20;
  o.backend.data_max_bytes = 64 << 20;
  Cell cell(sim, std::move(o));
  cell.Start();

  // Co-tenant clients live on backend hosts; the rest get their own hosts.
  std::vector<Client*> clients;
  std::vector<net::HostId> cotenant_hosts, solo_hosts;
  for (uint32_t s = 0; s < 6; ++s) {
    for (int k = 0; k < 2; ++k) {
      ClientConfig cc;
      cc.client_id = uint32_t(clients.size() + 1);
      clients.push_back(cell.AddClientOnHost(cell.backend(s).host(), cc));
    }
    cotenant_hosts.push_back(cell.backend(s).host());
  }
  // Client-only hosts are packed (the paper averages 10.6 clients/host).
  for (int h = 0; h < 6; ++h) {
    ClientConfig cc;
    cc.client_id = uint32_t(clients.size() + 1);
    Client* first = cell.AddClient(cc);
    clients.push_back(first);
    solo_hosts.push_back(first->host());
    for (int k = 1; k < 3; ++k) {
      ClientConfig cc2;
      cc2.client_id = uint32_t(clients.size() + 1);
      clients.push_back(cell.AddClientOnHost(first->host(), cc2));
    }
  }
  for (Client* c : clients) (void)RunOp(sim, c->Connect());
  Preload(sim, clients[0], "ramp-", 2000, 4096);

  auto avg_engines = [&](const std::vector<net::HostId>& hosts) {
    double total = 0;
    for (net::HostId h : hosts) {
      total += cell.softnic()->engines(h).active_engines();
    }
    return total / double(hosts.size());
  };

  if (!report.enabled()) {
    std::printf("%14s %9s %9s %9s %12s %12s\n", "rate(ops/s)", "p50_us",
                "p90_us", "p99_us", "cotenant_eng", "solo_eng");
  }
  // Ramp: per-client closed-ish open loop at increasing rates.
  for (double per_client_rate : {2000.0, 5000.0, 10000.0, 20000.0, 40000.0,
                                 60000.0, 80000.0}) {
    WorkloadProfile profile = WorkloadProfile::Uniform(2000, 4096, 1.0);
    profile.name = "ramp";
    std::vector<std::unique_ptr<LoadDriver>> drivers;
    std::vector<sim::Task<void>> tasks;
    for (size_t c = 0; c < clients.size(); ++c) {
      LoadDriver::Options opts;
      opts.qps = per_client_rate;
      opts.duration = sim::Seconds(1);
      opts.window = sim::Seconds(1);
      opts.seed = c + 1;
      drivers.push_back(
          std::make_unique<LoadDriver>(*clients[c], profile, opts));
      tasks.push_back(drivers.back()->Run());
    }
    RunAll(sim, std::move(tasks));
    Histogram get_ns;
    int64_t gets = 0;
    for (const auto& d : drivers) {
      for (const auto& w : d->windows()) {
        get_ns.Merge(w.get_ns);
        gets += w.gets;
      }
    }
    const std::string tag = "qps" + std::to_string(int64_t(per_client_rate));
    report.AddScalar(tag + ".achieved_ops_per_sec", double(gets) / 1.0);
    report.AddScalar(tag + ".p50_us", get_ns.Percentile(0.50) / 1000.0);
    report.AddScalar(tag + ".p90_us", get_ns.Percentile(0.90) / 1000.0);
    report.AddScalar(tag + ".p99_us", get_ns.Percentile(0.99) / 1000.0);
    report.AddScalar(tag + ".cotenant_engines", avg_engines(cotenant_hosts));
    report.AddScalar(tag + ".solo_engines", avg_engines(solo_hosts));
    if (report.enabled()) continue;
    std::printf("%14.0f %9.1f %9.1f %9.1f %12.2f %12.2f\n",
                double(gets) / 1.0, get_ns.Percentile(0.50) / 1000.0,
                get_ns.Percentile(0.90) / 1000.0,
                get_ns.Percentile(0.99) / 1000.0, avg_engines(cotenant_hosts),
                avg_engines(solo_hosts));
  }
  if (report.enabled()) {
    report.AddSnapshot("final", cell.metrics().TakeSnapshot());
    report.Emit();
    return 0;
  }
  std::printf(
      "\nTakeaway check: co-tenant hosts scale engines out first; client-only\n"
      "hosts follow at higher load, and their scale-out pulls the tail down\n"
      "(or holds it flat) even as the offered rate keeps rising.\n");
  return 0;
}
